//! The two-level (ML1/ML2) schemes: the barebone OS-inspired design of
//! §IV and full TMCC (§V), selected by [`TmccToggles`].
//!
//! ML1 holds pages uncompressed at 4 KiB-frame granularity; ML2 holds
//! aggressively Deflate-compressed pages in sub-chunks. A single 8-byte
//! page-level CTE per page maps physical pages to either. Differences
//! between the two schemes:
//!
//! | | OS-inspired (§IV) | TMCC (§V) |
//! |---|---|---|
//! | CTE miss for ML1 data | serial CTE fetch → data fetch (Fig. 8a) | speculative **parallel** fetch using the CTE embedded in the walked PTB, verified against the real CTE (Fig. 8b/c) |
//! | ML2 codec latency | IBM general-purpose ASIC Deflate | memory-specialized ASIC Deflate (4× faster) |
//!
//! Both share the ML1 free list, the ML2 super-chunk free lists, the
//! sampled recency list, the migration machinery with its 8-page buffer,
//! and the eviction thresholds of §VI.
//!
//! # Capacity-pressure resilience
//!
//! The scheme also carries the runtime fault machinery: a budget shock
//! ([`FaultKind::ShrinkBudget`]) retires free frames immediately and books
//! the shortfall as *reclaim debt* that maintenance pays off by retiring
//! the frames eviction frees; while debt is outstanding or the free list
//! sits below the critical watermark the scheme runs in *degraded mode*
//! (emergency eviction bursts, raw-storage fallback when a page's exact
//! size class cannot be carved). [`Scheme::validate`] audits frame
//! conservation and CTE/placement consistency at any point.

use super::{cte_dram_addr, FlipPageContext, MemRequest, Scheme, SchemePressure};
use crate::config::{BitFlipEvent, FaultKind, FlipShape, FlipTarget, SchemeKind, TmccToggles};
use crate::error::TmccError;
use crate::free_list::{Ml1FreeList, Ml2FreeLists};
use crate::page_meta::{PageInfo, PageMetaStore, Placement};
use crate::page_slab::PageId;
use crate::recency::RecencyList;
use crate::size_model::SizeModel;
use crate::stats::SimStats;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use tmcc_deflate::{DeflateParams, DeflateScratch, DeflateTiming, IbmDeflateModel, MemDeflate};
use tmcc_sim_dram::DramSim;
use tmcc_sim_mem::{CteBuffer, CteCache, CteCacheConfig, PageTable};
use tmcc_types::addr::{BlockAddr, DramAddr, Ppn, PAGE_SIZE};
use tmcc_types::bitvec::BitVec;
use tmcc_types::cte::{Cte, MemoryLevel, TruncatedCte};
use tmcc_types::fxhash::FxHashMap;
use tmcc_types::ptb::{CompressedPtb, PtbGeometry};
use tmcc_types::pte::{PageTableBlock, PTES_PER_PTB};

/// Entries in the MC's page-migration buffer (§VI: "a 32KB buffer (i.e.,
/// eight 4KB entries)").
const MIGRATION_BUFFER_ENTRIES: usize = 8;

/// Probability a writeback re-draws a page's compressibility.
const DIRTY_REDRAW_PROBABILITY: f64 = 0.02;

/// Evictions per maintenance slot in normal operation (§VI: migrations
/// are lower priority than LLC accesses and must not monopolize DRAM).
const NORMAL_EVICTION_BURST: u32 = 4;

/// Evictions per maintenance slot in degraded mode: free-frame production
/// outweighs bandwidth fairness when the free list is critically low or
/// reclaim debt is outstanding.
const EMERGENCY_EVICTION_BURST: u32 = 32;

/// Free frames a budget shrink always leaves behind: carving any ML2
/// super-chunk needs at most 8 contiguous chunks, so draining below this
/// floor would leave eviction unable to grow ML2 and the debt unpayable.
const CARVE_RESERVE: usize = 8;

/// Cost of refilling one scrubbed CTE-cache line from the in-DRAM table:
/// a single uncached 64 B read at closed-row latency.
const CTE_SCRUB_REFILL_NS: f64 = 60.0;

/// Per-frame cost of rebuilding the ML1 free map from the authoritative
/// page-placement metadata after the conservation audit flags it: a
/// sequential sweep touching one packed word per frame.
const FREE_MAP_REBUILD_NS_PER_FRAME: f64 = 0.5;

/// The shared two-level scheme.
pub struct TwoLevelScheme {
    toggles: TmccToggles,
    /// Per-page state, packed one word per page and indexed
    /// arithmetically by the dense PPN layout — steady-state accesses
    /// derive a [`PageId`] once per request and never hash (see
    /// [`crate::page_meta`]). The CTE is not stored: it is derived from
    /// the placement on demand (see [`Self::cte_of`]).
    pages: PageMetaStore,
    ml1_free: Ml1FreeList,
    ml2: Ml2FreeLists,
    recency: RecencyList,
    cte_cache: CteCache,
    cte_buffer: CteBuffer,
    /// Modelled embedded CTEs per PTB block (what is physically stored in
    /// the compressed PTB encoding in DRAM).
    ptb_embed: FxHashMap<u64, [Option<TruncatedCte>; PTES_PER_PTB]>,
    /// Latest PTB location of each PPN's PTE, for lazy repair.
    ptb_slot_of: FxHashMap<u64, (u64, usize)>,
    size_model: SizeModel,
    timing: DeflateTiming,
    ibm: IbmDeflateModel,
    /// Low-water mark: start evicting (paper's 4000-chunk threshold,
    /// scaled).
    evict_lo: usize,
    /// Eviction target (hysteresis).
    evict_hi: usize,
    /// Critical mark: ML2 reads yield to evictions (paper's 3000-chunk
    /// flip).
    evict_crit: usize,
    /// Completion times of in-flight page migrations (≤ `migration_cap`).
    migration_buffer: VecDeque<f64>,
    /// Live migration-buffer capacity (a fault can shrink it below
    /// [`MIGRATION_BUFFER_ENTRIES`]).
    migration_cap: usize,
    /// Pages evicted to ML2 awaiting cache-hierarchy flush by the system.
    evicted_pages: Vec<Ppn>,
    total_frames: u32,
    /// Frames the budget no longer covers but eviction has not yet
    /// reclaimed (a ballooning shrink larger than the free list).
    reclaim_debt: u64,
    /// First frame id never handed out, so budget growth can mint fresh
    /// frames without colliding with live ones.
    next_frame_id: u32,
    /// Whether the scheme is in degraded mode (see module docs).
    degraded: bool,
    /// Last simulated instant degraded time was accounted up to.
    degraded_mark_ns: f64,
    /// Percent inflation applied to compressed sizes at eviction (a
    /// content-profile shift fault).
    size_inflation_pct: u32,
    /// Embedded-CTE lookups left to forcibly treat as stale (fault).
    force_stale: u64,
    rng: SmallRng,
}

impl TwoLevelScheme {
    /// Builds the scheme and performs initial placement.
    ///
    /// `budget_frames` 4 KiB frames of DRAM are available. Page-table
    /// pages are pinned into ML1 first; data pages (hottest first — their
    /// index order) fill ML1 until only the eviction reserve remains, and
    /// the rest are compressed into ML2.
    ///
    /// # Panics
    ///
    /// Panics if the budget cannot hold the workload even with every
    /// overflow page compressed into ML2 (use
    /// [`try_new`](Self::try_new) for a fallible build, or
    /// [`min_budget_frames`](Self::min_budget_frames) to pick feasible
    /// budgets).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        toggles: TmccToggles,
        cte_cfg: CteCacheConfig,
        size_model: SizeModel,
        page_table: &PageTable,
        data_pages: u64,
        budget_frames: u32,
        seed: u64,
        recency_sample: f64,
    ) -> Self {
        match Self::try_new(
            toggles,
            cte_cfg,
            size_model,
            page_table,
            data_pages,
            budget_frames,
            seed,
            recency_sample,
        ) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the scheme and performs initial placement, returning
    /// [`TmccError::InfeasibleBudget`] when the budget cannot hold the
    /// workload even with every overflow page compressed into ML2.
    #[allow(clippy::too_many_arguments)]
    pub fn try_new(
        toggles: TmccToggles,
        cte_cfg: CteCacheConfig,
        size_model: SizeModel,
        page_table: &PageTable,
        data_pages: u64,
        budget_frames: u32,
        seed: u64,
        recency_sample: f64,
    ) -> Result<Self, TmccError> {
        let evict_lo = ((budget_frames as usize) / 64).max(24);
        let mut s = Self {
            toggles,
            pages: PageMetaStore::new(page_table.table_region_base()),
            ml1_free: Ml1FreeList::with_chunks(budget_frames),
            ml2: Ml2FreeLists::paper_classes(),
            recency: RecencyList::with_probability(seed, recency_sample),
            cte_cache: CteCache::new(cte_cfg),
            cte_buffer: CteBuffer::paper_default(),
            ptb_embed: FxHashMap::default(),
            ptb_slot_of: FxHashMap::default(),
            size_model,
            timing: DeflateTiming::default(),
            ibm: IbmDeflateModel::default(),
            evict_lo,
            evict_hi: evict_lo + evict_lo / 2,
            evict_crit: (evict_lo * 3) / 4,
            migration_buffer: VecDeque::new(),
            migration_cap: MIGRATION_BUFFER_ENTRIES,
            evicted_pages: Vec::new(),
            total_frames: budget_frames,
            reclaim_debt: 0,
            next_frame_id: budget_frames,
            degraded: false,
            degraded_mark_ns: 0.0,
            size_inflation_pct: 0,
            force_stale: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0x2_1E5E1),
        };
        // Pin page-table pages in ML1.
        let mut table_ppns: Vec<u64> = Vec::new();
        for level in (1..=4).rev() {
            for (block, _) in page_table.ptbs_at_level(level) {
                table_ppns.push(block.ppn().raw());
            }
        }
        table_ppns.sort_unstable();
        table_ppns.dedup();
        let table_pages = table_ppns.len() as u64;
        for ppn in table_ppns {
            let frame = s.ml1_free.pop().ok_or(TmccError::InfeasibleBudget {
                budget_frames: budget_frames as u64,
                required_frames: table_pages,
                stage: "page-table pinning",
            })?;
            s.pages.insert(
                ppn,
                PageInfo {
                    place: Placement::Ml1 { frame },
                    dirty_epoch: 0,
                    pinned: true,
                    incompressible: false,
                },
            );
        }
        // Place data pages, hottest (lowest index) first. Choose the split
        // point k so that pages 0..k live in ML1 and k.. fit into ML2
        // within the remaining budget (plus the eviction reserve). The
        // candidate k runs from data_pages down to 0 while the suffix sum
        // of class-rounded ML2 sizes accumulates in lockstep, so the
        // search streams in O(1) extra space — no per-page arrays, which
        // would dominate host memory at TB-scale footprints.
        let avail = s.ml1_free.len() as u64;
        let reserve = s.evict_hi as u64 + 8;
        // ML2 bytes needed if pages k.. go to ML2 (the suffix sum at the
        // loop variable's current value).
        let mut suffix_bytes = 0u64;
        let mut split = None;
        for k in (0..=data_pages).rev() {
            // ML2 frames with ~3% carving slack.
            let ml2_frames = (suffix_bytes * 103 / 100).div_ceil(PAGE_SIZE as u64);
            if k + ml2_frames + reserve <= avail {
                split = Some(k);
                break;
            }
            if k > 0 {
                suffix_bytes += s.ml2_rounded_bytes(k - 1);
            }
        }
        // When no k fits, the loop ran to k = 0, so `suffix_bytes` holds
        // the all-ML2 total for the error report.
        let split = split.ok_or_else(|| TmccError::InfeasibleBudget {
            budget_frames: budget_frames as u64,
            required_frames: table_pages
                + (suffix_bytes * 103 / 100).div_ceil(PAGE_SIZE as u64)
                + reserve,
            stage: "ML1/ML2 data placement",
        })?;
        // Walk pages coldest-first so the recency list ends up ordered
        // with the hottest (lowest-index) pages at the hot end.
        for idx in (0..data_pages).rev() {
            let ppn = Ppn::new(idx);
            if idx < split {
                let frame = s.ml1_free.pop().ok_or(TmccError::InfeasibleBudget {
                    budget_frames: budget_frames as u64,
                    required_frames: table_pages + split + reserve,
                    stage: "ML1 fill",
                })?;
                s.pages.insert(
                    idx,
                    PageInfo {
                        place: Placement::Ml1 { frame },
                        dirty_epoch: 0,
                        pinned: false,
                        incompressible: false,
                    },
                );
                s.recency.insert_hot(ppn);
            } else {
                let sizes = s.size_model.sizes_of(idx, 0);
                let comp = sizes.deflate_bytes.min(PAGE_SIZE);
                let sub = s.ml2.try_allocate(comp, &mut s.ml1_free).map_err(|_| {
                    TmccError::InfeasibleBudget {
                        budget_frames: budget_frames as u64,
                        required_frames: table_pages
                            + split
                            + (suffix_bytes * 103 / 100).div_ceil(PAGE_SIZE as u64)
                            + reserve,
                        stage: "ML2 placement",
                    }
                })?;
                s.pages.insert(
                    idx,
                    PageInfo {
                        place: Placement::Ml2 { sub, comp_bytes: comp as u32 },
                        dirty_epoch: 0,
                        pinned: false,
                        incompressible: false,
                    },
                );
            }
        }
        // Warm the embedded CTEs in every compressible PTB (§VI: "warm up
        // ML1, ML2, and embedded CTEs in compressed PTBs").
        if toggles.embedded_ctes {
            let geometry = PtbGeometry::paper_default();
            for level in 1..=4u8 {
                for (block, ptb) in page_table.ptbs_at_level(level) {
                    s.refresh_ptb_embedding(block, &ptb, geometry);
                }
            }
        }
        Ok(s)
    }

    /// Smallest feasible budget (in frames) for a workload: the page
    /// table pinned uncompressed, every data page in ML2, plus the
    /// eviction reserve.
    pub fn min_budget_frames(size_model: &SizeModel, table_pages: u64, data_pages: u64) -> u32 {
        // Mirror the placement logic: class-rounded ML2 sizes plus ~3%
        // carving slack.
        let classes = Ml2FreeLists::paper_classes();
        let mut ml2_bytes = 0u64;
        for idx in 0..data_pages {
            let comp = size_model.sizes_of(idx, 0).deflate_bytes.min(PAGE_SIZE);
            let rounded = classes
                .class_for(comp)
                .map(|c| classes.class_size(c) as u64)
                .unwrap_or(PAGE_SIZE as u64);
            ml2_bytes += rounded;
        }
        let ml2_frames = (ml2_bytes * 103 / 100).div_ceil(PAGE_SIZE as u64) as u32;
        let reserve = ((table_pages + data_pages) as u32 / 40).max(64);
        table_pages as u32 + ml2_frames + reserve + 8
    }

    /// Whether the scheme is currently in degraded mode (free list below
    /// the critical watermark, or reclaim debt outstanding).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Outstanding reclaim debt in frames (non-zero only after a budget
    /// shrink larger than the free list).
    pub fn reclaim_debt(&self) -> u64 {
        self.reclaim_debt
    }

    /// Class-rounded ML2 bytes data page `idx` would occupy if placed
    /// compressed (4 KiB when it fits no class).
    fn ml2_rounded_bytes(&self, idx: u64) -> u64 {
        let comp = self.size_model.sizes_of(idx, 0).deflate_bytes.min(PAGE_SIZE);
        self.ml2.class_for(comp).map(|c| self.ml2.class_size(c) as u64).unwrap_or(PAGE_SIZE as u64)
    }

    /// Derives a page's CTE from its placement. The schemes never
    /// populate the pair vector and [`Cte::set_frame`] writes exactly the
    /// frame and level, so reconstruction is bit-identical to the CTE the
    /// scheme used to keep stored and mutate in lockstep.
    fn cte_of(&self, info: &PageInfo) -> Result<Cte, TmccError> {
        let (frame, level) = match info.place {
            Placement::Ml1 { frame } => (frame, MemoryLevel::Ml1),
            Placement::Ml2 { sub, .. } => {
                ((self.ml2.try_addr_of(sub)? / PAGE_SIZE as u64) as u32, MemoryLevel::Ml2)
            }
        };
        let mut cte = Cte::new(frame, level);
        cte.set_incompressible(info.incompressible);
        Ok(cte)
    }

    fn refresh_ptb_embedding(&mut self, block: BlockAddr, ptb: &PageTableBlock, g: PtbGeometry) {
        let Ok(mut compressed) = CompressedPtb::compress(ptb, g) else {
            self.ptb_embed.remove(&block.raw());
            return;
        };
        let mut slots = [None; PTES_PER_PTB];
        for (i, slot) in slots.iter_mut().enumerate() {
            let pte = ptb.entry(i);
            if !pte.is_present() {
                continue;
            }
            if let Some(info) = self.pages.get(pte.ppn().raw()) {
                let Ok(cte) = self.cte_of(&info) else {
                    continue;
                };
                let t = cte.truncated();
                if compressed.embed_cte(i, t) {
                    *slot = Some(t);
                }
            }
        }
        self.ptb_embed.insert(block.raw(), slots);
    }

    /// Re-derives the eviction watermarks after the budget changed.
    fn rescale_watermarks(&mut self) {
        let lo = ((self.total_frames as usize) / 64).max(24);
        self.evict_lo = lo;
        self.evict_hi = lo + lo / 2;
        self.evict_crit = (lo * 3) / 4;
    }

    /// Accounts degraded time and flips the degraded flag on pressure
    /// changes. Entry: free list below the emergency watermark (half the
    /// critical mark — ordinary pressure transients stay in normal
    /// operation) or unpaid reclaim debt. Exit (with hysteresis): debt
    /// paid *and* free list back above the low watermark.
    fn update_degradation(&mut self, now_ns: f64, stats: &mut SimStats) {
        if self.degraded {
            stats.degraded_ns += (now_ns - self.degraded_mark_ns).max(0.0);
            self.degraded_mark_ns = now_ns;
            if self.reclaim_debt == 0 && self.ml1_free.len() >= self.evict_lo {
                self.degraded = false;
                stats.recoveries = stats.recoveries.saturating_add(1);
            }
        } else if self.reclaim_debt > 0 || self.ml1_free.len() < self.evict_crit / 2 {
            self.degraded = true;
            self.degraded_mark_ns = now_ns;
        }
    }

    /// Retires one frame whose contents are beyond recovery: the ladder's
    /// terminal rung. The frame leaves the budget permanently — taken off
    /// the free list when one can be spared, otherwise booked as reclaim
    /// debt exactly like a budget shrink — so a poisoned frame can never
    /// be handed out again.
    fn poison_frame(&mut self, now_ns: f64, stats: &mut SimStats) {
        if self.ml1_free.len() > CARVE_RESERVE && self.ml1_free.pop().is_some() {
            // Quarantined straight off the free list.
        } else {
            self.reclaim_debt += 1;
        }
        self.total_frames = self.total_frames.saturating_sub(1);
        self.rescale_watermarks();
        stats.frames_poisoned = stats.frames_poisoned.saturating_add(1);
        self.update_degradation(now_ns, stats);
    }

    /// Compressed size of a page at eviction time, after any
    /// content-profile-shift inflation.
    fn eviction_comp_bytes(&self, deflate_bytes: usize) -> usize {
        deflate_bytes + deflate_bytes * self.size_inflation_pct as usize / 100
    }

    /// The authoritative DRAM byte address of a request's block.
    fn data_addr(&self, info: &PageInfo, req: &MemRequest) -> Result<u64, TmccError> {
        match info.place {
            Placement::Ml1 { frame } => {
                Ok(frame as u64 * PAGE_SIZE as u64 + (req.block.index_in_page() * 64) as u64)
            }
            Placement::Ml2 { sub, .. } => self.ml2.try_addr_of(sub),
        }
    }

    /// Derives the dense slab handle for a request's page — arithmetic
    /// only; the per-access paths below reuse it for every state lookup.
    #[inline]
    fn page_id(&self, ppn: Ppn) -> Result<PageId, TmccError> {
        self.pages.id_of(ppn.raw()).ok_or(TmccError::UnplacedPage { ppn: ppn.raw() })
    }

    /// Physical→DRAM translation + data fetch for an LLC-miss read.
    #[allow(clippy::too_many_arguments)]
    fn serve_translated_read(
        &mut self,
        req: &MemRequest,
        id: PageId,
        now_ns: f64,
        dram: &mut DramSim,
        stats: &mut SimStats,
        count_stats: bool,
    ) -> Result<f64, TmccError> {
        let key = req.ppn.raw();
        let info = self.pages.get_id(id).ok_or(TmccError::UnplacedPage { ppn: key })?;
        let in_ml1 = matches!(info.place, Placement::Ml1 { .. });
        let addr = self.data_addr(&info, req)?;
        if self.cte_cache.access(req.ppn) {
            if count_stats {
                stats.cte_hits = stats.cte_hits.saturating_add(1);
                if in_ml1 {
                    stats.ml1_cte_hit = stats.ml1_cte_hit.saturating_add(1);
                }
            }
            return Ok(dram.access(now_ns, DramAddr::new(addr), req.write));
        }
        if count_stats {
            stats.cte_misses = stats.cte_misses.saturating_add(1);
            if req.after_tlb_miss {
                stats.cte_misses_after_tlb_miss = stats.cte_misses_after_tlb_miss.saturating_add(1);
            }
        }
        let cte_addr = DramAddr::new(cte_dram_addr(req.ppn));
        let correct = self.cte_of(&info)?;
        let done = if self.toggles.embedded_ctes {
            match self.cte_buffer.lookup(req.ppn).and_then(|e| e.cte) {
                Some(embedded) => {
                    // Speculative parallel access (Fig. 8b): fetch the CTE
                    // and the data (at the embedded CTE's frame) at once.
                    let spec_addr = embedded.frame() as u64 * PAGE_SIZE as u64
                        + (req.block.index_in_page() * 64) as u64;
                    let cte_done = dram.access(now_ns, cte_addr, false);
                    let spec_done = dram.access(now_ns, DramAddr::new(spec_addr), req.write);
                    let both = cte_done.max(spec_done);
                    let forced_stale = if self.force_stale > 0 {
                        self.force_stale -= 1;
                        true
                    } else {
                        false
                    };
                    if embedded.matches(&correct) && !forced_stale {
                        if count_stats && in_ml1 {
                            stats.ml1_parallel_correct =
                                stats.ml1_parallel_correct.saturating_add(1);
                        }
                        both
                    } else {
                        // Stale embedding: re-access with the correct CTE
                        // (Fig. 8c) and lazily repair the PTB (§V-A2).
                        if count_stats && in_ml1 {
                            stats.ml1_parallel_mismatch =
                                stats.ml1_parallel_mismatch.saturating_add(1);
                        }
                        self.repair_embedding(req.ppn, correct.truncated());
                        dram.access(both, DramAddr::new(addr), req.write)
                    }
                }
                None => {
                    // No embedded CTE: serial, as in prior work (Fig. 8a).
                    if count_stats && in_ml1 {
                        stats.ml1_serial = stats.ml1_serial.saturating_add(1);
                    }
                    self.repair_embedding(req.ppn, correct.truncated());
                    let cte_done = dram.access(now_ns, cte_addr, false);
                    dram.access(cte_done, DramAddr::new(addr), req.write)
                }
            }
        } else {
            if count_stats && in_ml1 {
                stats.ml1_serial = stats.ml1_serial.saturating_add(1);
            }
            let cte_done = dram.access(now_ns, cte_addr, false);
            dram.access(cte_done, DramAddr::new(addr), req.write)
        };
        // The MC always caches the CTE it fetched (§VII).
        self.cte_cache.fill(req.ppn);
        Ok(done)
    }

    /// Reconcile the CTE buffer and the stored PTB embedding with the
    /// verified CTE (the lazy update of §V-A2/3).
    fn repair_embedding(&mut self, ppn: Ppn, correct: TruncatedCte) {
        if self.cte_buffer.reconcile(ppn, correct).is_some() {
            if let Some(&(block, slot)) = self.ptb_slot_of.get(&ppn.raw()) {
                if let Some(slots) = self.ptb_embed.get_mut(&block) {
                    slots[slot] = Some(correct);
                }
            }
        }
    }

    /// Serves an access to a page currently in ML2: decompress the needed
    /// block, respond, and migrate the page to ML1 in the background.
    #[allow(clippy::too_many_arguments)]
    fn serve_ml2(
        &mut self,
        req: &MemRequest,
        id: PageId,
        now_ns: f64,
        dram: &mut DramSim,
        stats: &mut SimStats,
        count_stats: bool,
    ) -> Result<f64, TmccError> {
        stats.ml2_reads = stats.ml2_reads.saturating_add(1);
        let key = req.ppn.raw();
        let info = self.pages.get_id(id).ok_or(TmccError::UnplacedPage { ppn: key })?;
        let (sub, comp_bytes) = match info.place {
            Placement::Ml2 { sub, comp_bytes } => (sub, comp_bytes as usize),
            Placement::Ml1 { .. } => {
                return Err(TmccError::InvariantViolation {
                    detail: format!("serve_ml2 called for ML1-resident page {key:#x}"),
                })
            }
        };
        // Translation + first burst of the compressed page.
        let first = self.serve_translated_read(req, id, now_ns, dram, stats, count_stats)?;
        // Stream the remaining compressed bursts (they pipeline into the
        // decompressor; their bus time matters, their latency does not).
        let sub_addr = self.ml2.try_addr_of(sub)?;
        for k in 1..comp_bytes.div_ceil(64) {
            let _ = dram.access_background(first, DramAddr::new(sub_addr + (k * 64) as u64), false);
        }
        // Needed-block decompression latency: the ML2-codec difference
        // between TMCC and the barebone design (Fig. 20's ML2 opt).
        let dec_ns = if self.toggles.fast_deflate {
            self.timing.half_page_latency(comp_bytes * 8, PAGE_SIZE).ns
        } else {
            self.ibm.half_page_decompress_ns(PAGE_SIZE)
        };
        let mut done = first + dec_ns;
        // Migration buffer (§VI): stall when all entries are busy. A
        // fault can shrink the live capacity mid-run, in which case the
        // drain below is a bounded retry — one stall per excess entry.
        while let Some(&head) = self.migration_buffer.front() {
            if head <= now_ns {
                self.migration_buffer.pop_front();
            } else {
                break;
            }
        }
        while self.migration_buffer.len() >= self.migration_cap {
            let Some(head) = self.migration_buffer.pop_front() else {
                break;
            };
            let stall = (head - now_ns).max(0.0);
            stats.migration_stall_ns += stall;
            done += stall;
        }
        // Under critical free-list pressure, evictions preempt ML2 reads
        // (§VI: priorities flip below the lower threshold).
        if self.ml1_free.len() < self.evict_crit {
            stats.ml2_crit_penalties = stats.ml2_crit_penalties.saturating_add(1);
            let full_dec = if self.toggles.fast_deflate {
                self.timing.decompress_latency(comp_bytes * 8, PAGE_SIZE).ns
            } else {
                self.ibm.decompress_latency_ns(PAGE_SIZE)
            };
            done += full_dec * 0.5;
        }
        // Background migration ML2 -> ML1.
        if let Some(frame) = self.ml1_free.pop() {
            stats.ml2_to_ml1_migrations = stats.ml2_to_ml1_migrations.saturating_add(1);
            self.ml2.try_free(sub, &mut self.ml1_free)?;
            if !self.pages.set_place(id, Placement::Ml1 { frame }) {
                return Err(TmccError::UnplacedPage { ppn: key });
            }
            self.recency.insert_hot(req.ppn);
            // Write the decompressed page into its new frame (background,
            // via the rank-scoped write mode of §VI).
            let base = frame as u64 * PAGE_SIZE as u64;
            let mut t = done;
            for b in 0..(PAGE_SIZE / 64) {
                t = dram.access_background(t, DramAddr::new(base + (b * 64) as u64), true);
            }
            self.migration_buffer.push_back(t);
        }
        Ok(done)
    }
}

impl Scheme for TwoLevelScheme {
    fn kind(&self) -> SchemeKind {
        if self.toggles.embedded_ctes && self.toggles.fast_deflate {
            SchemeKind::Tmcc
        } else {
            SchemeKind::OsInspired
        }
    }

    fn access(
        &mut self,
        req: &MemRequest,
        now_ns: f64,
        dram: &mut DramSim,
        stats: &mut SimStats,
    ) -> Result<f64, TmccError> {
        let key = req.ppn.raw();
        let id = self.page_id(req.ppn)?;
        let info = self.pages.get_id(id).ok_or(TmccError::UnplacedPage { ppn: key })?;
        let done = match info.place {
            Placement::Ml1 { .. } => {
                let done = self.serve_translated_read(req, id, now_ns, dram, stats, true)?;
                if !info.pinned {
                    self.recency.on_access(req.ppn);
                }
                stats.ml1_latency_sum_ns += done - now_ns;
                done
            }
            Placement::Ml2 { .. } => {
                let done = self.serve_ml2(req, id, now_ns, dram, stats, true)?;
                stats.ml2_latency_sum_ns += done - now_ns;
                done
            }
        };
        Ok(done - now_ns)
    }

    fn writeback(
        &mut self,
        req: &MemRequest,
        now_ns: f64,
        dram: &mut DramSim,
        stats: &mut SimStats,
    ) -> Result<(), TmccError> {
        let key = req.ppn.raw();
        let Ok(id) = self.page_id(req.ppn) else {
            return Ok(());
        };
        let Some(info) = self.pages.get_id(id) else {
            return Ok(());
        };
        match info.place {
            Placement::Ml1 { .. } => {
                // Lazy write drain: translate via the CTE cache (no stats)
                // and write in the background.
                let _ = self.cte_cache.access(req.ppn);
                let addr = self.data_addr(&info, req)?;
                let _ = dram.access_background(now_ns, DramAddr::new(addr), true);
                if info.incompressible && self.recency.on_incompressible_writeback(req.ppn) {
                    // Re-entered the recency list; it may be evicted again.
                }
                if self.rng.gen::<f64>() < DIRTY_REDRAW_PROBABILITY
                    && !self.pages.bump_dirty_epoch(id)
                {
                    return Err(TmccError::UnplacedPage { ppn: key });
                }
            }
            Placement::Ml2 { .. } => {
                // A store to a compressed page pulls it back to ML1.
                let _ = self.serve_ml2(req, id, now_ns, dram, stats, false)?;
            }
        }
        Ok(())
    }

    fn on_ptb_fetched(&mut self, block: BlockAddr, ptb: &PageTableBlock) {
        if !self.toggles.embedded_ctes {
            return;
        }
        let slots = self.ptb_embed.get(&block.raw()).copied().unwrap_or([None; PTES_PER_PTB]);
        for (i, slot) in slots.iter().enumerate() {
            let pte = ptb.entry(i);
            if pte.is_present() {
                self.cte_buffer.insert(pte.ppn(), *slot, block);
                self.ptb_slot_of.insert(pte.ppn().raw(), (block.raw(), i));
            }
        }
    }

    fn maintain(
        &mut self,
        now_ns: f64,
        dram: &mut DramSim,
        stats: &mut SimStats,
    ) -> Result<(), TmccError> {
        self.update_degradation(now_ns, stats);
        if self.ml1_free.len() >= self.evict_lo && self.reclaim_debt == 0 {
            return Ok(());
        }
        // Grow the free list by evicting cold pages towards the target, a
        // few pages per maintenance slot so migrations never monopolize
        // the memory system (they are lower priority than LLC accesses,
        // §VI). Degraded mode lifts the per-slot budget: producing free
        // frames (and paying reclaim debt) beats bandwidth fairness.
        let burst = if self.degraded { EMERGENCY_EVICTION_BURST } else { NORMAL_EVICTION_BURST };
        let mut evictions_left = burst;
        let mut performed = 0u32;
        while (self.ml1_free.len() < self.evict_hi || self.reclaim_debt > 0) && evictions_left > 0 {
            evictions_left -= 1;
            let Some(victim) = self.recency.pop_coldest() else {
                break;
            };
            let key = victim.raw();
            let Some(vid) = self.pages.id_of(key) else {
                continue;
            };
            let Some(info) = self.pages.get_id(vid) else {
                continue;
            };
            let Placement::Ml1 { frame } = info.place else {
                continue; // already migrated by a racing path
            };
            if info.pinned {
                continue;
            }
            let sizes = self.size_model.sizes_of(key, info.dirty_epoch);
            let comp = self.eviction_comp_bytes(sizes.deflate_bytes);
            if sizes.ml2_incompressible() || self.ml2.class_for(comp).is_none() {
                // Keep it in ML1, flag it, and stop retrying (§IV-B).
                stats.incompressible_evictions = stats.incompressible_evictions.saturating_add(1);
                if !self.pages.set_incompressible(vid, true) {
                    return Err(TmccError::UnplacedPage { ppn: key });
                }
                continue;
            }
            let mut donated = false;
            let (sub, stored_bytes) = match self.ml2.try_allocate(comp, &mut self.ml1_free) {
                Ok(sub) => (sub, comp),
                Err(TmccError::FreeListExhausted { .. }) if !self.degraded => {
                    break; // no room to grow ML2 right now; retry next slot
                }
                Err(TmccError::FreeListExhausted { .. }) => {
                    // Graceful degradation, step 1: donate the victim's
                    // own frame (the page is staged in the migration
                    // buffer while compression runs) and retry once.
                    self.ml1_free.push(frame);
                    donated = true;
                    match self.ml2.try_allocate(comp, &mut self.ml1_free) {
                        Ok(sub) => (sub, comp),
                        // Step 2: the exact class still cannot be carved,
                        // so store the page raw (4 KiB class, one chunk)
                        // to keep evictions making forward progress.
                        Err(_) => match self.ml2.try_allocate(PAGE_SIZE, &mut self.ml1_free) {
                            Ok(sub) => {
                                stats.raw_fallbacks = stats.raw_fallbacks.saturating_add(1);
                                (sub, PAGE_SIZE)
                            }
                            Err(_) => {
                                // Unreachable by construction (the donated
                                // frame satisfies the one-chunk carve);
                                // reaching it means the free list lost
                                // frames mid-eviction.
                                return Err(TmccError::InvariantViolation {
                                    detail: format!(
                                        "donated frame {frame} vanished during the \
                                         raw-fallback carve for page {key:#x}"
                                    ),
                                });
                            }
                        },
                    }
                }
                Err(e) => return Err(e),
            };
            performed += 1;
            if performed > NORMAL_EVICTION_BURST {
                stats.emergency_evictions = stats.emergency_evictions.saturating_add(1);
            }
            stats.ml1_to_ml2_migrations = stats.ml1_to_ml2_migrations.saturating_add(1);
            // Read the page, compress (background), write the sub-chunk.
            let base = frame as u64 * PAGE_SIZE as u64;
            let mut t = now_ns;
            for b in 0..(PAGE_SIZE / 64) {
                t = dram.access_background(t, DramAddr::new(base + (b * 64) as u64), false);
            }
            let sub_addr = self.ml2.try_addr_of(sub)?;
            for k in 0..stored_bytes.div_ceil(64) {
                t = dram.access_background(t, DramAddr::new(sub_addr + (k * 64) as u64), true);
            }
            if !self.pages.set_place(vid, Placement::Ml2 { sub, comp_bytes: stored_bytes as u32 }) {
                return Err(TmccError::UnplacedPage { ppn: key });
            }
            if !donated {
                self.ml1_free.push(frame);
            }
            // Pay reclaim debt from free-list surplus: retire frames down
            // to the carve reserve so a ballooning shrink converges while
            // ML2 can still grow.
            while self.reclaim_debt > 0 && self.ml1_free.len() > CARVE_RESERVE {
                if self.ml1_free.pop().is_some() {
                    self.reclaim_debt -= 1;
                } else {
                    break;
                }
            }
            self.evicted_pages.push(victim);
        }
        self.update_degradation(now_ns, stats);
        Ok(())
    }

    fn apply_fault(
        &mut self,
        fault: FaultKind,
        now_ns: f64,
        stats: &mut SimStats,
    ) -> Result<(), TmccError> {
        match fault {
            FaultKind::ShrinkBudget { frames } => {
                let frames = frames.min(self.total_frames);
                let mut removed = 0u32;
                while removed < frames && self.ml1_free.len() > CARVE_RESERVE {
                    if self.ml1_free.pop().is_some() {
                        removed += 1;
                    } else {
                        break;
                    }
                }
                // Whatever the free list could not cover becomes reclaim
                // debt: maintenance retires frames eviction frees until
                // the books balance again.
                self.reclaim_debt += (frames - removed) as u64;
                self.total_frames -= frames;
                self.rescale_watermarks();
            }
            FaultKind::GrowBudget { frames } => {
                let pay = (frames as u64).min(self.reclaim_debt) as u32;
                self.reclaim_debt -= pay as u64;
                for _ in 0..frames - pay {
                    self.ml1_free.push(self.next_frame_id);
                    self.next_frame_id += 1;
                }
                self.total_frames += frames;
                self.rescale_watermarks();
            }
            FaultKind::CteFlushStorm => {
                self.cte_cache.flush();
                self.cte_buffer.clear();
            }
            FaultKind::StaleEmbeddings { count } => {
                self.force_stale += count;
            }
            FaultKind::ShrinkMigrationBuffer { entries } => {
                self.migration_cap = entries.max(1);
            }
            FaultKind::RestoreMigrationBuffer => {
                self.migration_cap = MIGRATION_BUFFER_ENTRIES;
            }
            FaultKind::ContentShift { percent } => {
                self.size_inflation_pct = percent;
            }
        }
        stats.faults_injected = stats.faults_injected.saturating_add(1);
        self.update_degradation(now_ns, stats);
        Ok(())
    }

    /// The detect → recover → poison ladder over one injected upset.
    ///
    /// Every event books `flips_injected` exactly once and exactly one of
    /// `corruptions_detected` / `sdc_escapes`; a detected event books
    /// exactly one of `corruptions_corrected` / `corruptions_uncorrectable`
    /// — the audit invariants of [`SimStats`] hold per event, not just in
    /// aggregate. The end-to-end Ml2 path runs the *real* codec and seal:
    /// the page's bytes are compressed, bits are flipped in the stored
    /// payload (or the seal, for incompressible-to-nothing zero pages),
    /// and [`MemDeflate::try_decompress_sealed`] renders the verdict.
    fn apply_bit_flip(
        &mut self,
        flip: &BitFlipEvent,
        entropy: u64,
        page: Option<FlipPageContext<'_>>,
        now_ns: f64,
        stats: &mut SimStats,
    ) -> Result<(), TmccError> {
        stats.flips_injected = stats.flips_injected.saturating_add(1);
        match flip.target {
            FlipTarget::Ml2Payload => {
                let Some(ctx) = page else {
                    // No page content was delivered: nothing to exercise,
                    // and nothing detected the upset.
                    stats.sdc_escapes += 1;
                    return Ok(());
                };
                let codec = MemDeflate::new(DeflateParams::new());
                let mut comp = codec.compress_page(ctx.bytes);
                let mut seal = comp.seal(0);
                let payload_bits = comp.payload().len() * 8;
                // Land the upset: Single = 1 bit, Burst = 4 adjacent bits,
                // RowHammer = 16 bits sprayed across the payload plus one
                // in the seal words. A zero page stores no payload, so its
                // flips can only land in the seal/metadata.
                let flips: u32 = match flip.shape {
                    FlipShape::Single => 1,
                    FlipShape::Burst => 4,
                    FlipShape::RowHammer => 16,
                };
                if payload_bits == 0 {
                    for i in 0..flips {
                        seal.flip_bit((entropy >> (7 * (i % 8))) as u32 + 11 * i);
                    }
                } else {
                    let base = (entropy % payload_bits as u64) as usize;
                    for i in 0..flips as usize {
                        let bit = match flip.shape {
                            // Adjacent bits of one word, like a real burst.
                            FlipShape::Single | FlipShape::Burst => (base + i) % payload_bits,
                            // Spread across victim rows.
                            FlipShape::RowHammer => {
                                (base + i * (payload_bits / 17 + 1)) % payload_bits
                            }
                        };
                        comp.payload_mut()[bit / 8] ^= 1 << (bit % 8);
                    }
                    if flip.shape == FlipShape::RowHammer {
                        // The aggressor row also clips the seal metadata.
                        seal.flip_bit(entropy as u32);
                    }
                }
                // Detect: the sealed decode is the only read path.
                let mut scratch = DeflateScratch::new();
                let mut out = Vec::with_capacity(PAGE_SIZE);
                let verdict = codec.try_decompress_sealed(&comp, &seal, 0, &mut scratch, &mut out);
                let Err(err) = verdict else {
                    // Distinct-bit flips cannot cancel, so a passing seal
                    // means the upset was absorbed by dead payload space —
                    // book it as an escape rather than claim credit.
                    stats.sdc_escapes += 1;
                    return Ok(());
                };
                stats.corruptions_detected += 1;
                if err.is_metadata() {
                    stats.metadata_corruptions_detected += 1;
                }
                // The failed decode attempt is the detection cost.
                let mut recovery =
                    self.timing.decompress_latency(payload_bits.max(8), PAGE_SIZE).ns;
                if !ctx.dirty {
                    // Clean page: regenerate from the content source and
                    // recompress — a full repair.
                    let rebuilt = codec.compress_page(ctx.bytes);
                    recovery += self
                        .timing
                        .compress_latency(
                            ctx.bytes.len(),
                            rebuilt.lz_stats(),
                            rebuilt.lz_len(),
                            rebuilt.payload_bits(),
                        )
                        .ns;
                    stats.corruptions_corrected += 1;
                } else {
                    match flip.shape {
                        FlipShape::RowHammer => {
                            // Divergent content, multi-bit spray across the
                            // row: the raw copy sits in the same blast
                            // radius, so nothing authoritative remains.
                            stats.corruptions_uncorrectable += 1;
                            self.poison_frame(now_ns, stats);
                        }
                        _ => {
                            // Divergent page: restore from the raw-storage
                            // copy (a plain 4 KiB read, no decompression).
                            recovery += self.timing.decompress_latency(PAGE_SIZE * 8, PAGE_SIZE).ns;
                            stats.corruptions_corrected += 1;
                            stats.raw_fallbacks += 1;
                        }
                    }
                }
                stats.recovery_ns += recovery;
            }
            FlipTarget::Ml1Data => {
                // ML1 frames hold raw uncompressed data with no seal or
                // parity over them — the defining hole in the coverage
                // story, measured rather than hidden.
                stats.sdc_escapes += 1;
            }
            FlipTarget::CteSlot => {
                let line = (entropy >> 24) as usize;
                let bit = entropy as u32;
                match flip.shape {
                    // One stored bit: odd weight, parity always fires.
                    FlipShape::Single => self.cte_cache.corrupt_slot_bit(line, bit),
                    // Two adjacent bits of one line: even weight — the
                    // per-line parity's blind spot.
                    FlipShape::Burst => {
                        self.cte_cache.corrupt_slot_bit(line, bit);
                        self.cte_cache.corrupt_slot_bit(line, bit + 1);
                    }
                    // One bit in each of three victim lines: every line
                    // trips its own parity.
                    FlipShape::RowHammer => {
                        for i in 0..3usize {
                            self.cte_cache.corrupt_slot_bit(line + i, bit.wrapping_add(i as u32));
                        }
                    }
                }
                let violating = self.cte_cache.audit_parity();
                if violating > 0 {
                    stats.corruptions_detected += 1;
                    stats.metadata_corruptions_detected += 1;
                    // Scrub drops the poisoned translations; later walks
                    // refill them from the authoritative in-DRAM table, so
                    // the event is fully corrected.
                    let dropped = self.cte_cache.scrub();
                    stats.corruptions_corrected += 1;
                    stats.recovery_ns += dropped as f64 * CTE_SCRUB_REFILL_NS;
                } else {
                    // An even-weight burst slipped past the parity: a
                    // forged translation is now live.
                    stats.sdc_escapes += 1;
                }
            }
            FlipTarget::FreeListBitmap => {
                // The free map is covered by the frame-conservation audit
                // ([`Scheme::validate`]): a flipped free bit makes the
                // free/owned/resident books disagree with the budget, so
                // detection is certain and the map is rebuilt from the
                // page-placement metadata (which stayed intact).
                stats.corruptions_detected += 1;
                stats.metadata_corruptions_detected += 1;
                match flip.shape {
                    FlipShape::Single | FlipShape::Burst => {
                        stats.corruptions_corrected += 1;
                        stats.recovery_ns +=
                            self.total_frames as f64 * FREE_MAP_REBUILD_NS_PER_FRAME;
                    }
                    FlipShape::RowHammer => {
                        // The spray straddles the map *and* the frame it
                        // describes: rebuild cannot vouch for the frame's
                        // contents, so it leaves service.
                        stats.corruptions_uncorrectable += 1;
                        self.poison_frame(now_ns, stats);
                    }
                }
            }
        }
        self.update_degradation(now_ns, stats);
        Ok(())
    }

    fn validate(&self) -> Result<(), TmccError> {
        // The CTE is derived from the placement (see `cte_of`), so the
        // old CTE↔placement lockstep checks hold by construction; what
        // remains auditable is the placement itself.
        let mut ml1_resident = 0usize;
        let mut frames_seen = BitVec::with_len(self.next_frame_id as usize);
        for (ppn, info) in self.pages.iter() {
            match info.place {
                Placement::Ml1 { frame } => {
                    ml1_resident += 1;
                    if frame >= self.next_frame_id {
                        return Err(TmccError::InvariantViolation {
                            detail: format!(
                                "page {ppn:#x}: ML1 frame {frame} was never minted \
                                 (next id {})",
                                self.next_frame_id
                            ),
                        });
                    }
                    if !frames_seen.set(frame as usize) {
                        return Err(TmccError::InvariantViolation {
                            detail: format!("frame {frame} backs more than one ML1 page"),
                        });
                    }
                }
                Placement::Ml2 { sub, comp_bytes } => {
                    // A dangling sub-chunk surfaces as a typed error here.
                    let _addr = self.ml2.try_addr_of(sub)?;
                    if comp_bytes as usize > self.ml2.class_size(sub.class) {
                        return Err(TmccError::InvariantViolation {
                            detail: format!(
                                "page {ppn:#x}: {comp_bytes} compressed bytes overflow \
                                 its {}-byte class",
                                self.ml2.class_size(sub.class)
                            ),
                        });
                    }
                }
            }
        }
        // Frame conservation: every frame the budget covers (plus the
        // ones a shrink has yet to reclaim) is free, owned by ML2, or
        // backing exactly one resident ML1 page.
        let held = self.ml1_free.len() + self.ml2.owned_chunks() + ml1_resident;
        let budgeted = self.total_frames as usize + self.reclaim_debt as usize;
        if held != budgeted {
            return Err(TmccError::InvariantViolation {
                detail: format!(
                    "frame conservation broken: {} free + {} ML2-owned + {ml1_resident} \
                     ML1-resident = {held}, budget covers {budgeted} ({} total + {} debt)",
                    self.ml1_free.len(),
                    self.ml2.owned_chunks(),
                    self.total_frames,
                    self.reclaim_debt
                ),
            });
        }
        Ok(())
    }

    fn drain_evicted_pages(&mut self, out: &mut Vec<Ppn>) {
        out.append(&mut self.evicted_pages);
    }

    fn pressure(&self) -> SchemePressure {
        SchemePressure { degraded: self.degraded, reclaim_debt_frames: self.reclaim_debt }
    }

    fn dram_used_bytes(&self) -> u64 {
        // Frames awaiting reclaim are still physically occupied, so they
        // count towards use until eviction retires them.
        let frames_in_use =
            self.total_frames as u64 + self.reclaim_debt - self.ml1_free.len() as u64;
        let cte_table = self.pages.len() as u64 * Cte::SIZE_IN_DRAM as u64;
        let recency = RecencyList::dram_overhead_bytes(self.pages.len() as u64);
        frames_in_use * PAGE_SIZE as u64 + cte_table + recency
    }

    fn metadata_heap_bytes(&self) -> usize {
        self.pages.heap_bytes()
            + self.ml1_free.heap_bytes()
            + self.ml2.heap_bytes()
            + self.recency.heap_bytes()
            + self.cte_cache.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_model::PageSizes;
    use tmcc_sim_dram::InterleavePolicy;
    use tmcc_sim_mem::PageTableConfig;
    use tmcc_types::addr::Vpn;

    fn build(
        toggles: TmccToggles,
        data_pages: u64,
        budget_frames: u32,
    ) -> (TwoLevelScheme, PageTable) {
        let mut pt = PageTable::new(PageTableConfig::default());
        for i in 0..data_pages {
            pt.map(Vpn::new(i), Ppn::new(i));
        }
        let model =
            SizeModel::from_samples(vec![PageSizes { deflate_bytes: 1200, block_bytes: 3000 }]);
        let s = TwoLevelScheme::new(
            toggles,
            CteCacheConfig::tmcc(),
            model,
            &pt,
            data_pages,
            budget_frames,
            7,
            0.15,
        );
        (s, pt)
    }

    fn dram() -> DramSim {
        DramSim::new(Default::default(), InterleavePolicy::coarse_mc())
    }

    fn read_req(ppn: u64, after_tlb: bool) -> MemRequest {
        MemRequest {
            ppn: Ppn::new(ppn),
            block: Ppn::new(ppn).block(0),
            write: false,
            is_ptb: false,
            after_tlb_miss: after_tlb,
        }
    }

    #[test]
    fn placement_respects_budget() {
        let (s, _pt) = build(TmccToggles::full(), 2000, 1200);
        assert!(s.dram_used_bytes() <= 1200 * 4096 + 2100 * 24);
        // Some pages must have landed in ML2.
        let ml2_pages =
            s.pages.iter().filter(|(_, p)| matches!(p.place, Placement::Ml2 { .. })).count();
        assert!(ml2_pages > 0, "budget pressure must push pages to ML2");
    }

    #[test]
    fn infeasible_budget_is_a_typed_error() {
        let mut pt = PageTable::new(PageTableConfig::default());
        for i in 0..2000u64 {
            pt.map(Vpn::new(i), Ppn::new(i));
        }
        let model =
            SizeModel::from_samples(vec![PageSizes { deflate_bytes: 1200, block_bytes: 3000 }]);
        let err = TwoLevelScheme::try_new(
            TmccToggles::full(),
            CteCacheConfig::tmcc(),
            model,
            &pt,
            2000,
            100, // far below min_budget_frames
            7,
            0.15,
        )
        .map(|_| ())
        .expect_err("budget must be rejected");
        assert!(matches!(err, TmccError::InfeasibleBudget { .. }), "got {err:?}");
    }

    #[test]
    fn fresh_scheme_passes_validation() {
        let (s, _pt) = build(TmccToggles::full(), 2000, 1200);
        s.validate().expect("fresh placement is consistent");
    }

    #[test]
    fn ml1_hit_after_cte_cached_is_single_dram_trip() {
        let (mut s, _pt) = build(TmccToggles::full(), 100, 400);
        let mut d = dram();
        let mut stats = SimStats::default();
        let cold = s.access(&read_req(0, true), 0.0, &mut d, &mut stats).unwrap();
        let warm = s.access(&read_req(0, false), 10_000.0, &mut d, &mut stats).unwrap();
        assert!(warm < cold || stats.cte_hits > 0);
        assert_eq!(stats.cte_hits, 1);
    }

    #[test]
    fn embedded_cte_enables_parallel_access() {
        let (mut s, pt) = build(TmccToggles::full(), 3000, 2000);
        let mut d = dram();
        let mut stats = SimStats::default();
        // Deliver the PTB for page 5 (as the walker would).
        let step = *pt.walk_path(Vpn::new(5)).unwrap().last().unwrap();
        let ptb = pt.ptb_at(step.ptb_block).unwrap();
        s.on_ptb_fetched(step.ptb_block, &ptb);
        let _ = s.access(&read_req(5, true), 0.0, &mut d, &mut stats).unwrap();
        assert_eq!(stats.ml1_parallel_correct, 1, "{stats:?}");
        assert_eq!(stats.ml1_serial, 0);
    }

    #[test]
    fn barebone_never_goes_parallel() {
        let (mut s, pt) = build(TmccToggles::none(), 3000, 2000);
        let mut d = dram();
        let mut stats = SimStats::default();
        let step = *pt.walk_path(Vpn::new(5)).unwrap().last().unwrap();
        let ptb = pt.ptb_at(step.ptb_block).unwrap();
        s.on_ptb_fetched(step.ptb_block, &ptb);
        let _ = s.access(&read_req(5, true), 0.0, &mut d, &mut stats).unwrap();
        assert_eq!(stats.ml1_parallel_correct, 0);
        assert_eq!(stats.ml1_serial, 1);
    }

    #[test]
    fn stale_embedding_detected_and_repaired() {
        let (mut s, pt) = build(TmccToggles::full(), 3000, 2000);
        let mut d = dram();
        let mut stats = SimStats::default();
        let step = *pt.walk_path(Vpn::new(5)).unwrap().last().unwrap();
        let ptb = pt.ptb_at(step.ptb_block).unwrap();
        s.on_ptb_fetched(step.ptb_block, &ptb);
        // Secretly migrate page 5 to a different frame.
        let new_frame = s.ml1_free.pop().unwrap();
        let id = s.pages.id_of(5).unwrap();
        assert!(s.pages.set_place(id, Placement::Ml1 { frame: new_frame }));
        let _ = s.access(&read_req(5, true), 0.0, &mut d, &mut stats).unwrap();
        assert_eq!(stats.ml1_parallel_mismatch, 1);
        // The embedding has been lazily repaired: next fetch+access is
        // parallel-correct.
        let ptb = pt.ptb_at(step.ptb_block).unwrap();
        s.cte_cache.invalidate(Ppn::new(5));
        s.on_ptb_fetched(step.ptb_block, &ptb);
        let _ = s.access(&read_req(5, true), 1_000_000.0, &mut d, &mut stats).unwrap();
        assert_eq!(stats.ml1_parallel_correct, 1, "{stats:?}");
    }

    #[test]
    fn forced_stale_fault_degrades_parallel_access() {
        let (mut s, pt) = build(TmccToggles::full(), 3000, 2000);
        let mut d = dram();
        let mut stats = SimStats::default();
        let step = *pt.walk_path(Vpn::new(5)).unwrap().last().unwrap();
        let ptb = pt.ptb_at(step.ptb_block).unwrap();
        s.on_ptb_fetched(step.ptb_block, &ptb);
        s.apply_fault(FaultKind::StaleEmbeddings { count: 1 }, 0.0, &mut stats).unwrap();
        let _ = s.access(&read_req(5, true), 0.0, &mut d, &mut stats).unwrap();
        assert_eq!(stats.ml1_parallel_mismatch, 1, "{stats:?}");
        assert_eq!(stats.faults_injected, 1);
        // The forced staleness is consumed; the repaired embedding then
        // goes parallel-correct again.
        let ptb = pt.ptb_at(step.ptb_block).unwrap();
        s.cte_cache.invalidate(Ppn::new(5));
        s.on_ptb_fetched(step.ptb_block, &ptb);
        let _ = s.access(&read_req(5, true), 1_000_000.0, &mut d, &mut stats).unwrap();
        assert_eq!(stats.ml1_parallel_correct, 1, "{stats:?}");
    }

    #[test]
    fn cte_flush_storm_forces_misses() {
        let (mut s, _pt) = build(TmccToggles::full(), 100, 400);
        let mut d = dram();
        let mut stats = SimStats::default();
        let _ = s.access(&read_req(0, true), 0.0, &mut d, &mut stats).unwrap();
        let _ = s.access(&read_req(0, false), 10_000.0, &mut d, &mut stats).unwrap();
        assert_eq!(stats.cte_hits, 1);
        s.apply_fault(FaultKind::CteFlushStorm, 20_000.0, &mut stats).unwrap();
        let _ = s.access(&read_req(0, false), 30_000.0, &mut d, &mut stats).unwrap();
        assert_eq!(stats.cte_hits, 1, "flushed line must miss again");
        assert_eq!(stats.cte_misses, 2);
    }

    #[test]
    fn ml2_access_migrates_page_up() {
        let (mut s, _pt) = build(TmccToggles::full(), 2000, 1200);
        let mut d = dram();
        let mut stats = SimStats::default();
        // The last page surely landed in ML2.
        let victim = (0..2000)
            .rev()
            .find(|i| matches!(s.pages.get(*i as u64).unwrap().place, Placement::Ml2 { .. }))
            .expect("an ML2 page exists") as u64;
        let lat = s.access(&read_req(victim, true), 0.0, &mut d, &mut stats).unwrap();
        assert_eq!(stats.ml2_reads, 1);
        assert_eq!(stats.ml2_to_ml1_migrations, 1);
        let place = s.pages.get(victim).unwrap().place;
        assert!(matches!(place, Placement::Ml1 { .. }), "page must now be in ML1");
        // Fast-deflate latency: ~140 ns decompress + DRAM.
        assert!(lat > 100.0 && lat < 1_000.0, "latency {lat}");
    }

    #[test]
    fn slow_deflate_makes_ml2_access_slower() {
        let mk = |toggles| {
            let (mut s, _pt) = build(toggles, 2000, 1200);
            let mut d = dram();
            let mut stats = SimStats::default();
            let victim = (0..2000)
                .rev()
                .find(|i| matches!(s.pages.get(*i as u64).unwrap().place, Placement::Ml2 { .. }))
                .expect("ml2 page") as u64;
            s.access(&read_req(victim, true), 0.0, &mut d, &mut stats).unwrap()
        };
        let fast = mk(TmccToggles::full());
        let slow = mk(TmccToggles::ml1_only());
        assert!(slow > fast + 400.0, "IBM-speed ML2: {slow} vs fast {fast}");
    }

    #[test]
    fn maintain_replenishes_free_list() {
        let (mut s, _pt) = build(TmccToggles::full(), 2000, 1200);
        let mut d = dram();
        let mut stats = SimStats::default();
        // Drain the free list below the low-water mark.
        while s.ml1_free.len() >= s.evict_lo {
            let frame = s.ml1_free.pop().unwrap();
            s.total_frames -= 1; // keep the books balanced for validate()
            let _ = frame;
        }
        let drained = s.ml1_free.len();
        s.maintain(0.0, &mut d, &mut stats).unwrap();
        assert!(s.ml1_free.len() > drained, "eviction must free frames");
        assert!(stats.ml1_to_ml2_migrations > 0);
    }

    #[test]
    fn budget_shock_enters_degraded_and_recovers() {
        let (mut s, _pt) = build(TmccToggles::full(), 2000, 1400);
        let mut d = dram();
        let mut stats = SimStats::default();
        s.validate().unwrap();
        // Shrink the budget far past what the free list can cover, so
        // debt is booked and degraded mode engages.
        s.apply_fault(FaultKind::ShrinkBudget { frames: 500 }, 0.0, &mut stats).unwrap();
        s.validate().unwrap();
        assert!(s.is_degraded(), "shock must enter degraded mode");
        assert!(s.reclaim_debt() > 0, "free list cannot cover the shrink");
        let mut now = 1_000.0;
        for _ in 0..400 {
            s.maintain(now, &mut d, &mut stats).unwrap();
            s.validate().unwrap();
            now += 1_000.0;
            if !s.is_degraded() {
                break;
            }
        }
        assert!(!s.is_degraded(), "pressure must eventually pass: {stats:?}");
        assert_eq!(s.reclaim_debt(), 0);
        assert!(stats.emergency_evictions > 0, "{stats:?}");
        assert_eq!(stats.recoveries, 1, "{stats:?}");
        assert!(stats.degraded_ns > 0.0);
        s.validate().unwrap();
    }

    #[test]
    fn budget_grow_mints_fresh_frames_and_pays_debt() {
        let (mut s, _pt) = build(TmccToggles::full(), 2000, 1400);
        let mut stats = SimStats::default();
        s.apply_fault(FaultKind::ShrinkBudget { frames: 500 }, 0.0, &mut stats).unwrap();
        let debt = s.reclaim_debt();
        assert!(debt > 0);
        s.apply_fault(FaultKind::GrowBudget { frames: 500 }, 10.0, &mut stats).unwrap();
        s.validate().unwrap();
        assert_eq!(s.reclaim_debt(), 0, "growth pays debt first");
        assert_eq!(s.total_frames, 1400);
    }

    #[test]
    fn incompressible_pages_stay_and_are_flagged() {
        let mut pt = PageTable::new(PageTableConfig::default());
        for i in 0..500u64 {
            pt.map(Vpn::new(i), Ppn::new(i));
        }
        let model = SizeModel::from_samples(vec![PageSizes {
            deflate_bytes: 4099, // cannot fit any ML2 class
            block_bytes: 4096,
        }]);
        let mut s = TwoLevelScheme::new(
            TmccToggles::full(),
            CteCacheConfig::tmcc(),
            model,
            &pt,
            500,
            600,
            7,
            0.15,
        );
        let mut d = dram();
        let mut stats = SimStats::default();
        while s.ml1_free.len() >= s.evict_lo {
            let _ = s.ml1_free.pop();
            s.total_frames -= 1;
        }
        s.maintain(0.0, &mut d, &mut stats).unwrap();
        assert!(stats.incompressible_evictions > 0);
        assert_eq!(stats.ml1_to_ml2_migrations, 0);
        let flagged = s.pages.iter().filter(|(_, p)| p.incompressible).count();
        assert!(flagged > 0);
    }

    #[test]
    fn content_shift_inflates_eviction_sizes() {
        let (mut s, _pt) = build(TmccToggles::full(), 2000, 1200);
        let mut stats = SimStats::default();
        // 1200-byte pages inflated 300% exceed the 4096-byte class.
        s.apply_fault(FaultKind::ContentShift { percent: 300 }, 0.0, &mut stats).unwrap();
        let mut d = dram();
        while s.ml1_free.len() >= s.evict_lo {
            let _ = s.ml1_free.pop();
            s.total_frames -= 1;
        }
        s.maintain(0.0, &mut d, &mut stats).unwrap();
        assert!(
            stats.incompressible_evictions > 0,
            "inflated pages must be flagged incompressible: {stats:?}"
        );
        assert_eq!(stats.ml1_to_ml2_migrations, 0);
    }
}
