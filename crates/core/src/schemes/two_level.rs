//! The two-level (ML1/ML2) schemes: the barebone OS-inspired design of
//! §IV and full TMCC (§V), selected by [`TmccToggles`].
//!
//! ML1 holds pages uncompressed at 4 KiB-frame granularity; ML2 holds
//! aggressively Deflate-compressed pages in sub-chunks. A single 8-byte
//! page-level CTE per page maps physical pages to either. Differences
//! between the two schemes:
//!
//! | | OS-inspired (§IV) | TMCC (§V) |
//! |---|---|---|
//! | CTE miss for ML1 data | serial CTE fetch → data fetch (Fig. 8a) | speculative **parallel** fetch using the CTE embedded in the walked PTB, verified against the real CTE (Fig. 8b/c) |
//! | ML2 codec latency | IBM general-purpose ASIC Deflate | memory-specialized ASIC Deflate (4× faster) |
//!
//! Both share the ML1 free list, the ML2 super-chunk free lists, the
//! sampled recency list, the migration machinery with its 8-page buffer,
//! and the eviction thresholds of §VI.

use super::{cte_dram_addr, MemRequest, Scheme};
use crate::config::{SchemeKind, TmccToggles};
use crate::free_list::{Ml1FreeList, Ml2FreeLists, SubChunk};
use crate::recency::RecencyList;
use crate::size_model::SizeModel;
use crate::stats::SimStats;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use tmcc_deflate::{DeflateTiming, IbmDeflateModel};
use tmcc_sim_dram::DramSim;
use tmcc_sim_mem::{CteBuffer, CteCache, CteCacheConfig, PageTable};
use tmcc_types::addr::{BlockAddr, DramAddr, Ppn, PAGE_SIZE};
use tmcc_types::cte::{Cte, MemoryLevel, TruncatedCte};
use tmcc_types::pte::{PageTableBlock, PTES_PER_PTB};
use tmcc_types::ptb::{CompressedPtb, PtbGeometry};

/// Entries in the MC's page-migration buffer (§VI: "a 32KB buffer (i.e.,
/// eight 4KB entries)").
const MIGRATION_BUFFER_ENTRIES: usize = 8;

/// Probability a writeback re-draws a page's compressibility.
const DIRTY_REDRAW_PROBABILITY: f64 = 0.02;

/// Where a page's bytes currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Placement {
    Ml1 { frame: u32 },
    Ml2 { sub: SubChunk, comp_bytes: u32 },
}

/// Per-page state.
#[derive(Debug, Clone, Copy)]
struct PageInfo {
    cte: Cte,
    place: Placement,
    dirty_epoch: u32,
    /// Page-table pages are pinned in ML1 and never migrate.
    pinned: bool,
}

/// The shared two-level scheme.
pub struct TwoLevelScheme {
    toggles: TmccToggles,
    pages: HashMap<u64, PageInfo>,
    ml1_free: Ml1FreeList,
    ml2: Ml2FreeLists,
    recency: RecencyList,
    cte_cache: CteCache,
    cte_buffer: CteBuffer,
    /// Modelled embedded CTEs per PTB block (what is physically stored in
    /// the compressed PTB encoding in DRAM).
    ptb_embed: HashMap<u64, [Option<TruncatedCte>; PTES_PER_PTB]>,
    /// Latest PTB location of each PPN's PTE, for lazy repair.
    ptb_slot_of: HashMap<u64, (u64, usize)>,
    size_model: SizeModel,
    timing: DeflateTiming,
    ibm: IbmDeflateModel,
    /// Low-water mark: start evicting (paper's 4000-chunk threshold,
    /// scaled).
    evict_lo: usize,
    /// Eviction target (hysteresis).
    evict_hi: usize,
    /// Critical mark: ML2 reads yield to evictions (paper's 3000-chunk
    /// flip).
    evict_crit: usize,
    /// Completion times of in-flight page migrations (≤ 8).
    migration_buffer: VecDeque<f64>,
    /// Pages evicted to ML2 awaiting cache-hierarchy flush by the system.
    evicted_pages: Vec<Ppn>,
    total_frames: u32,
    rng: SmallRng,
}

impl TwoLevelScheme {
    /// Builds the scheme and performs initial placement.
    ///
    /// `budget_frames` 4 KiB frames of DRAM are available. Page-table
    /// pages are pinned into ML1 first; data pages (hottest first — their
    /// index order) fill ML1 until only the eviction reserve remains, and
    /// the rest are compressed into ML2.
    ///
    /// # Panics
    ///
    /// Panics if the budget cannot hold the workload even with every
    /// overflow page compressed into ML2 (use
    /// [`min_budget_frames`](Self::min_budget_frames) to pick feasible
    /// budgets).
    pub fn new(
        toggles: TmccToggles,
        cte_cfg: CteCacheConfig,
        size_model: SizeModel,
        page_table: &PageTable,
        data_pages: u64,
        budget_frames: u32,
        seed: u64,
        recency_sample: f64,
    ) -> Self {
        let evict_lo = ((budget_frames as usize) / 64).max(24);
        let mut s = Self {
            toggles,
            pages: HashMap::new(),
            ml1_free: Ml1FreeList::with_chunks(budget_frames),
            ml2: Ml2FreeLists::paper_classes(),
            recency: RecencyList::with_probability(seed, recency_sample),
            cte_cache: CteCache::new(cte_cfg),
            cte_buffer: CteBuffer::paper_default(),
            ptb_embed: HashMap::new(),
            ptb_slot_of: HashMap::new(),
            size_model,
            timing: DeflateTiming::default(),
            ibm: IbmDeflateModel::default(),
            evict_lo,
            evict_hi: evict_lo + evict_lo / 2,
            evict_crit: (evict_lo * 3) / 4,
            migration_buffer: VecDeque::new(),
            evicted_pages: Vec::new(),
            total_frames: budget_frames,
            rng: SmallRng::seed_from_u64(seed ^ 0x2_1E5E1),
        };
        // Pin page-table pages in ML1.
        let mut table_ppns: Vec<u64> = Vec::new();
        for level in (1..=4).rev() {
            for (block, _) in page_table.ptbs_at_level(level) {
                table_ppns.push(block.ppn().raw());
            }
        }
        table_ppns.sort_unstable();
        table_ppns.dedup();
        for ppn in table_ppns {
            let frame = s
                .ml1_free
                .pop()
                .expect("budget cannot even hold the page table");
            s.pages.insert(
                ppn,
                PageInfo {
                    cte: Cte::new(frame, MemoryLevel::Ml1),
                    place: Placement::Ml1 { frame },
                    dirty_epoch: 0,
                    pinned: true,
                },
            );
        }
        // Place data pages, hottest (lowest index) first. Choose the split
        // point k so that pages 0..k live in ML1 and k.. fit into ML2
        // within the remaining budget (plus the eviction reserve).
        let class_rounded: Vec<u64> = (0..data_pages)
            .map(|i| {
                let comp = s.size_model.sizes_of(i, 0).deflate_bytes.min(PAGE_SIZE);
                s.ml2
                    .class_for(comp)
                    .map(|c| s.ml2.class_size(c) as u64)
                    .unwrap_or(PAGE_SIZE as u64)
            })
            .collect();
        // suffix[k] = ML2 bytes needed if pages k.. go to ML2.
        let mut suffix = vec![0u64; data_pages as usize + 1];
        for k in (0..data_pages as usize).rev() {
            suffix[k] = suffix[k + 1] + class_rounded[k];
        }
        let avail = s.ml1_free.len() as u64;
        let reserve = s.evict_hi as u64 + 8;
        let mut split = 0u64;
        for k in (0..=data_pages).rev() {
            // ML2 frames with ~3% carving slack.
            let ml2_frames = (suffix[k as usize] * 103 / 100).div_ceil(PAGE_SIZE as u64);
            if k + ml2_frames + reserve <= avail {
                split = k;
                break;
            }
            assert!(
                k > 0,
                "DRAM budget infeasible: {avail} frames cannot hold the workload \
                 even fully compressed ({} ML2 bytes needed)",
                suffix[0]
            );
        }
        // Walk pages coldest-first so the recency list ends up ordered
        // with the hottest (lowest-index) pages at the hot end.
        for idx in (0..data_pages).rev() {
            let ppn = Ppn::new(idx);
            if idx < split {
                let frame = s.ml1_free.pop().expect("split point guarantees a frame");
                s.pages.insert(
                    idx,
                    PageInfo {
                        cte: Cte::new(frame, MemoryLevel::Ml1),
                        place: Placement::Ml1 { frame },
                        dirty_epoch: 0,
                        pinned: false,
                    },
                );
                s.recency.insert_hot(ppn);
            } else {
                let sizes = s.size_model.sizes_of(idx, 0);
                let comp = sizes.deflate_bytes.min(PAGE_SIZE);
                let sub = s
                    .ml2
                    .allocate(comp, &mut s.ml1_free)
                    .expect("DRAM budget infeasible: ML2 allocation failed during placement");
                let frame = (s.ml2.addr_of(sub) / PAGE_SIZE as u64) as u32;
                s.pages.insert(
                    idx,
                    PageInfo {
                        cte: Cte::new(frame, MemoryLevel::Ml2),
                        place: Placement::Ml2 {
                            sub,
                            comp_bytes: comp as u32,
                        },
                        dirty_epoch: 0,
                        pinned: false,
                    },
                );
            }
        }
        // Warm the embedded CTEs in every compressible PTB (§VI: "warm up
        // ML1, ML2, and embedded CTEs in compressed PTBs").
        if toggles.embedded_ctes {
            let geometry = PtbGeometry::paper_default();
            for level in 1..=4u8 {
                for (block, ptb) in page_table.ptbs_at_level(level) {
                    s.refresh_ptb_embedding(block, &ptb, geometry);
                }
            }
        }
        s
    }

    /// Smallest feasible budget (in frames) for a workload: the page
    /// table pinned uncompressed, every data page in ML2, plus the
    /// eviction reserve.
    pub fn min_budget_frames(
        size_model: &SizeModel,
        table_pages: u64,
        data_pages: u64,
    ) -> u32 {
        // Mirror the placement logic: class-rounded ML2 sizes plus ~3%
        // carving slack.
        let classes = Ml2FreeLists::paper_classes();
        let mut ml2_bytes = 0u64;
        for idx in 0..data_pages {
            let comp = size_model.sizes_of(idx, 0).deflate_bytes.min(PAGE_SIZE);
            let rounded = classes
                .class_for(comp)
                .map(|c| classes.class_size(c) as u64)
                .unwrap_or(PAGE_SIZE as u64);
            ml2_bytes += rounded;
        }
        let ml2_frames = (ml2_bytes * 103 / 100).div_ceil(PAGE_SIZE as u64) as u32;
        let reserve = ((table_pages + data_pages) as u32 / 40).max(64);
        table_pages as u32 + ml2_frames + reserve + 8
    }

    fn refresh_ptb_embedding(&mut self, block: BlockAddr, ptb: &PageTableBlock, g: PtbGeometry) {
        let Ok(mut compressed) = CompressedPtb::compress(ptb, g) else {
            self.ptb_embed.remove(&block.raw());
            return;
        };
        let mut slots = [None; PTES_PER_PTB];
        for (i, slot) in slots.iter_mut().enumerate() {
            let pte = ptb.entry(i);
            if !pte.is_present() {
                continue;
            }
            if let Some(info) = self.pages.get(&pte.ppn().raw()) {
                let t = info.cte.truncated();
                if compressed.embed_cte(i, t) {
                    *slot = Some(t);
                }
            }
        }
        self.ptb_embed.insert(block.raw(), slots);
    }

    /// The authoritative DRAM byte address of a request's block.
    fn data_addr(&self, req: &MemRequest) -> u64 {
        let info = self.pages.get(&req.ppn.raw()).expect("resident page");
        match info.place {
            Placement::Ml1 { frame } => {
                frame as u64 * PAGE_SIZE as u64 + (req.block.index_in_page() * 64) as u64
            }
            Placement::Ml2 { sub, .. } => self.ml2.addr_of(sub),
        }
    }

    /// Physical→DRAM translation + data fetch for an LLC-miss read.
    /// Returns `(completion_ns, served_from_ml2_subchunk_addr)`.
    fn serve_translated_read(
        &mut self,
        req: &MemRequest,
        now_ns: f64,
        dram: &mut DramSim,
        stats: &mut SimStats,
        count_stats: bool,
    ) -> f64 {
        let key = req.ppn.raw();
        let in_ml1 = matches!(
            self.pages.get(&key).expect("resident page").place,
            Placement::Ml1 { .. }
        );
        let addr = self.data_addr(req);
        if self.cte_cache.access(req.ppn) {
            if count_stats {
                stats.cte_hits += 1;
                if in_ml1 {
                    stats.ml1_cte_hit += 1;
                }
            }
            return dram.access(now_ns, DramAddr::new(addr), req.write);
        }
        if count_stats {
            stats.cte_misses += 1;
            if req.after_tlb_miss {
                stats.cte_misses_after_tlb_miss += 1;
            }
        }
        let cte_addr = DramAddr::new(cte_dram_addr(req.ppn));
        let correct = self.pages.get(&key).expect("resident page").cte;
        let done = if self.toggles.embedded_ctes {
            match self.cte_buffer.lookup(req.ppn).and_then(|e| e.cte) {
                Some(embedded) => {
                    // Speculative parallel access (Fig. 8b): fetch the CTE
                    // and the data (at the embedded CTE's frame) at once.
                    let spec_addr = embedded.frame() as u64 * PAGE_SIZE as u64
                        + (req.block.index_in_page() * 64) as u64;
                    let cte_done = dram.access(now_ns, cte_addr, false);
                    let spec_done = dram.access(now_ns, DramAddr::new(spec_addr), req.write);
                    let both = cte_done.max(spec_done);
                    if embedded.matches(&correct) {
                        if count_stats && in_ml1 {
                            stats.ml1_parallel_correct += 1;
                        }
                        both
                    } else {
                        // Stale embedding: re-access with the correct CTE
                        // (Fig. 8c) and lazily repair the PTB (§V-A2).
                        if count_stats && in_ml1 {
                            stats.ml1_parallel_mismatch += 1;
                        }
                        self.repair_embedding(req.ppn, correct.truncated());
                        dram.access(both, DramAddr::new(addr), req.write)
                    }
                }
                None => {
                    // No embedded CTE: serial, as in prior work (Fig. 8a).
                    if count_stats && in_ml1 {
                        stats.ml1_serial += 1;
                    }
                    self.repair_embedding(req.ppn, correct.truncated());
                    let cte_done = dram.access(now_ns, cte_addr, false);
                    dram.access(cte_done, DramAddr::new(addr), req.write)
                }
            }
        } else {
            if count_stats && in_ml1 {
                stats.ml1_serial += 1;
            }
            let cte_done = dram.access(now_ns, cte_addr, false);
            dram.access(cte_done, DramAddr::new(addr), req.write)
        };
        // The MC always caches the CTE it fetched (§VII).
        self.cte_cache.fill(req.ppn);
        done
    }

    /// Reconcile the CTE buffer and the stored PTB embedding with the
    /// verified CTE (the lazy update of §V-A2/3).
    fn repair_embedding(&mut self, ppn: Ppn, correct: TruncatedCte) {
        if self.cte_buffer.reconcile(ppn, correct).is_some() {
            if let Some(&(block, slot)) = self.ptb_slot_of.get(&ppn.raw()) {
                if let Some(slots) = self.ptb_embed.get_mut(&block) {
                    slots[slot] = Some(correct);
                }
            }
        }
    }

    /// Serves an access to a page currently in ML2: decompress the needed
    /// block, respond, and migrate the page to ML1 in the background.
    fn serve_ml2(
        &mut self,
        req: &MemRequest,
        now_ns: f64,
        dram: &mut DramSim,
        stats: &mut SimStats,
        count_stats: bool,
    ) -> f64 {
        stats.ml2_reads += 1;
        let key = req.ppn.raw();
        let (sub, comp_bytes) = match self.pages.get(&key).expect("resident").place {
            Placement::Ml2 { sub, comp_bytes } => (sub, comp_bytes as usize),
            Placement::Ml1 { .. } => unreachable!("serve_ml2 requires an ML2 page"),
        };
        // Translation + first burst of the compressed page.
        let first = self.serve_translated_read(req, now_ns, dram, stats, count_stats);
        // Stream the remaining compressed bursts (they pipeline into the
        // decompressor; their bus time matters, their latency does not).
        let sub_addr = self.ml2.addr_of(sub);
        for k in 1..comp_bytes.div_ceil(64) {
            let _ = dram.access_background(first, DramAddr::new(sub_addr + (k * 64) as u64), false);
        }
        // Needed-block decompression latency: the ML2-codec difference
        // between TMCC and the barebone design (Fig. 20's ML2 opt).
        let dec_ns = if self.toggles.fast_deflate {
            self.timing.half_page_latency(comp_bytes * 8, PAGE_SIZE).ns
        } else {
            self.ibm.half_page_decompress_ns(PAGE_SIZE)
        };
        let mut done = first + dec_ns;
        // Migration buffer (§VI): stall when all eight entries are busy.
        while let Some(&head) = self.migration_buffer.front() {
            if head <= now_ns {
                self.migration_buffer.pop_front();
            } else {
                break;
            }
        }
        if self.migration_buffer.len() >= MIGRATION_BUFFER_ENTRIES {
            let head = self
                .migration_buffer
                .pop_front()
                .expect("buffer known non-empty");
            let stall = (head - now_ns).max(0.0);
            stats.migration_stall_ns += stall;
            done += stall;
        }
        // Under critical free-list pressure, evictions preempt ML2 reads
        // (§VI: priorities flip below the lower threshold).
        if self.ml1_free.len() < self.evict_crit {
            stats.ml2_crit_penalties += 1;
            let full_dec = if self.toggles.fast_deflate {
                self.timing.decompress_latency(comp_bytes * 8, PAGE_SIZE).ns
            } else {
                self.ibm.decompress_latency_ns(PAGE_SIZE)
            };
            done += full_dec * 0.5;
        }
        // Background migration ML2 -> ML1.
        if let Some(frame) = self.ml1_free.pop() {
            stats.ml2_to_ml1_migrations += 1;
            self.ml2.free(sub, &mut self.ml1_free);
            let info = self.pages.get_mut(&key).expect("resident");
            info.place = Placement::Ml1 { frame };
            info.cte.set_frame(frame, MemoryLevel::Ml1);
            self.recency.insert_hot(req.ppn);
            // Write the decompressed page into its new frame (background,
            // via the rank-scoped write mode of §VI).
            let base = frame as u64 * PAGE_SIZE as u64;
            let mut t = done;
            for b in 0..(PAGE_SIZE / 64) {
                t = dram.access_background(t, DramAddr::new(base + (b * 64) as u64), true);
            }
            self.migration_buffer.push_back(t);
        }
        done
    }
}

impl Scheme for TwoLevelScheme {
    fn kind(&self) -> SchemeKind {
        if self.toggles.embedded_ctes && self.toggles.fast_deflate {
            SchemeKind::Tmcc
        } else {
            SchemeKind::OsInspired
        }
    }

    fn access(
        &mut self,
        req: &MemRequest,
        now_ns: f64,
        dram: &mut DramSim,
        stats: &mut SimStats,
    ) -> f64 {
        let key = req.ppn.raw();
        let info = *self.pages.get(&key).unwrap_or_else(|| {
            panic!("access to unplaced page {:#x}", key);
        });
        let done = match info.place {
            Placement::Ml1 { .. } => {
                let done = self.serve_translated_read(req, now_ns, dram, stats, true);
                if !info.pinned {
                    self.recency.on_access(req.ppn);
                }
                stats.ml1_latency_sum_ns += done - now_ns;
                done
            }
            Placement::Ml2 { .. } => {
                let done = self.serve_ml2(req, now_ns, dram, stats, true);
                stats.ml2_latency_sum_ns += done - now_ns;
                done
            }
        };
        done - now_ns
    }

    fn writeback(
        &mut self,
        req: &MemRequest,
        now_ns: f64,
        dram: &mut DramSim,
        stats: &mut SimStats,
    ) {
        let key = req.ppn.raw();
        let Some(info) = self.pages.get(&key).copied() else {
            return;
        };
        match info.place {
            Placement::Ml1 { .. } => {
                // Lazy write drain: translate via the CTE cache (no stats)
                // and write in the background.
                let _ = self.cte_cache.access(req.ppn);
                let addr = self.data_addr(req);
                let _ = dram.access_background(now_ns, DramAddr::new(addr), true);
                if info.cte.is_incompressible()
                    && self.recency.on_incompressible_writeback(req.ppn)
                {
                    // Re-entered the recency list; it may be evicted again.
                }
                if self.rng.gen::<f64>() < DIRTY_REDRAW_PROBABILITY {
                    self.pages
                        .get_mut(&key)
                        .expect("resident page")
                        .dirty_epoch += 1;
                }
            }
            Placement::Ml2 { .. } => {
                // A store to a compressed page pulls it back to ML1.
                let _ = self.serve_ml2(req, now_ns, dram, stats, false);
            }
        }
    }

    fn on_ptb_fetched(&mut self, block: BlockAddr, ptb: &PageTableBlock) {
        if !self.toggles.embedded_ctes {
            return;
        }
        let slots = self
            .ptb_embed
            .get(&block.raw())
            .copied()
            .unwrap_or([None; PTES_PER_PTB]);
        for i in 0..PTES_PER_PTB {
            let pte = ptb.entry(i);
            if pte.is_present() {
                self.cte_buffer.insert(pte.ppn(), slots[i], block);
                self.ptb_slot_of.insert(pte.ppn().raw(), (block.raw(), i));
            }
        }
    }

    fn maintain(&mut self, now_ns: f64, dram: &mut DramSim, stats: &mut SimStats) {
        if self.ml1_free.len() >= self.evict_lo {
            return;
        }
        // Grow the free list by evicting cold pages towards the target, a
        // few pages per maintenance slot so migrations never monopolize
        // the memory system (they are lower priority than LLC accesses,
        // §VI).
        let mut evictions_left = 4;
        while self.ml1_free.len() < self.evict_hi && evictions_left > 0 {
            evictions_left -= 1;
            let Some(victim) = self.recency.pop_coldest() else {
                break;
            };
            let key = victim.raw();
            let Some(info) = self.pages.get(&key).copied() else {
                continue;
            };
            let Placement::Ml1 { frame } = info.place else {
                continue; // already migrated by a racing path
            };
            if info.pinned {
                continue;
            }
            let sizes = self.size_model.sizes_of(key, info.dirty_epoch);
            let comp = sizes.deflate_bytes;
            if sizes.ml2_incompressible() || self.ml2.class_for(comp).is_none() {
                // Keep it in ML1, flag it, and stop retrying (§IV-B).
                stats.incompressible_evictions += 1;
                self.pages
                    .get_mut(&key)
                    .expect("resident page")
                    .cte
                    .set_incompressible(true);
                continue;
            }
            let Some(sub) = self.ml2.allocate(comp, &mut self.ml1_free) else {
                break; // no room to grow ML2 right now
            };
            stats.ml1_to_ml2_migrations += 1;
            // Read the page, compress (background), write the sub-chunk.
            let base = frame as u64 * PAGE_SIZE as u64;
            let mut t = now_ns;
            for b in 0..(PAGE_SIZE / 64) {
                t = dram.access_background(t, DramAddr::new(base + (b * 64) as u64), false);
            }
            let sub_addr = self.ml2.addr_of(sub);
            for k in 0..comp.div_ceil(64) {
                t = dram.access_background(t, DramAddr::new(sub_addr + (k * 64) as u64), true);
            }
            let info = self.pages.get_mut(&key).expect("resident page");
            info.place = Placement::Ml2 {
                sub,
                comp_bytes: comp as u32,
            };
            info.cte
                .set_frame((sub_addr / PAGE_SIZE as u64) as u32, MemoryLevel::Ml2);
            self.ml1_free.push(frame);
            self.evicted_pages.push(victim);
        }
    }

    fn drain_evicted_pages(&mut self) -> Vec<Ppn> {
        std::mem::take(&mut self.evicted_pages)
    }

    fn dram_used_bytes(&self) -> u64 {
        let frames_in_use = self.total_frames as u64 - self.ml1_free.len() as u64;
        let cte_table = self.pages.len() as u64 * Cte::SIZE_IN_DRAM as u64;
        let recency = RecencyList::dram_overhead_bytes(self.pages.len() as u64);
        frames_in_use * PAGE_SIZE as u64 + cte_table + recency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_model::PageSizes;
    use tmcc_sim_dram::InterleavePolicy;
    use tmcc_sim_mem::PageTableConfig;
    use tmcc_types::addr::Vpn;

    fn build(toggles: TmccToggles, data_pages: u64, budget_frames: u32) -> (TwoLevelScheme, PageTable) {
        let mut pt = PageTable::new(PageTableConfig::default());
        for i in 0..data_pages {
            pt.map(Vpn::new(i), Ppn::new(i));
        }
        let model = SizeModel::from_samples(vec![PageSizes {
            deflate_bytes: 1200,
            block_bytes: 3000,
        }]);
        let s = TwoLevelScheme::new(
            toggles,
            CteCacheConfig::tmcc(),
            model,
            &pt,
            data_pages,
            budget_frames,
            7,
            0.15,
        );
        (s, pt)
    }

    fn dram() -> DramSim {
        DramSim::new(Default::default(), InterleavePolicy::coarse_mc())
    }

    fn read_req(ppn: u64, after_tlb: bool) -> MemRequest {
        MemRequest {
            ppn: Ppn::new(ppn),
            block: Ppn::new(ppn).block(0),
            write: false,
            is_ptb: false,
            after_tlb_miss: after_tlb,
        }
    }

    #[test]
    fn placement_respects_budget() {
        let (s, _pt) = build(TmccToggles::full(), 2000, 1200);
        assert!(s.dram_used_bytes() <= 1200 * 4096 + 2100 * 24);
        // Some pages must have landed in ML2.
        let ml2_pages = s
            .pages
            .values()
            .filter(|p| matches!(p.place, Placement::Ml2 { .. }))
            .count();
        assert!(ml2_pages > 0, "budget pressure must push pages to ML2");
    }

    #[test]
    fn ml1_hit_after_cte_cached_is_single_dram_trip() {
        let (mut s, _pt) = build(TmccToggles::full(), 100, 400);
        let mut d = dram();
        let mut stats = SimStats::default();
        let cold = s.access(&read_req(0, true), 0.0, &mut d, &mut stats);
        let warm = s.access(&read_req(0, false), 10_000.0, &mut d, &mut stats);
        assert!(warm < cold || stats.cte_hits > 0);
        assert_eq!(stats.cte_hits, 1);
    }

    #[test]
    fn embedded_cte_enables_parallel_access() {
        let (mut s, pt) = build(TmccToggles::full(), 3000, 2000);
        let mut d = dram();
        let mut stats = SimStats::default();
        // Deliver the PTB for page 5 (as the walker would).
        let step = *pt.walk_path(Vpn::new(5)).unwrap().last().unwrap();
        let ptb = pt.ptb_at(step.ptb_block).unwrap();
        s.on_ptb_fetched(step.ptb_block, &ptb);
        let _ = s.access(&read_req(5, true), 0.0, &mut d, &mut stats);
        assert_eq!(stats.ml1_parallel_correct, 1, "{stats:?}");
        assert_eq!(stats.ml1_serial, 0);
    }

    #[test]
    fn barebone_never_goes_parallel() {
        let (mut s, pt) = build(TmccToggles::none(), 3000, 2000);
        let mut d = dram();
        let mut stats = SimStats::default();
        let step = *pt.walk_path(Vpn::new(5)).unwrap().last().unwrap();
        let ptb = pt.ptb_at(step.ptb_block).unwrap();
        s.on_ptb_fetched(step.ptb_block, &ptb);
        let _ = s.access(&read_req(5, true), 0.0, &mut d, &mut stats);
        assert_eq!(stats.ml1_parallel_correct, 0);
        assert_eq!(stats.ml1_serial, 1);
    }

    #[test]
    fn stale_embedding_detected_and_repaired() {
        let (mut s, pt) = build(TmccToggles::full(), 3000, 2000);
        let mut d = dram();
        let mut stats = SimStats::default();
        let step = *pt.walk_path(Vpn::new(5)).unwrap().last().unwrap();
        let ptb = pt.ptb_at(step.ptb_block).unwrap();
        s.on_ptb_fetched(step.ptb_block, &ptb);
        // Secretly migrate page 5 to a different frame.
        let new_frame = s.ml1_free.pop().unwrap();
        {
            let info = s.pages.get_mut(&5).unwrap();
            info.place = Placement::Ml1 { frame: new_frame };
            info.cte.set_frame(new_frame, MemoryLevel::Ml1);
        }
        let _ = s.access(&read_req(5, true), 0.0, &mut d, &mut stats);
        assert_eq!(stats.ml1_parallel_mismatch, 1);
        // The embedding has been lazily repaired: next fetch+access is
        // parallel-correct.
        let ptb = pt.ptb_at(step.ptb_block).unwrap();
        s.cte_cache.invalidate(Ppn::new(5));
        s.on_ptb_fetched(step.ptb_block, &ptb);
        let _ = s.access(&read_req(5, true), 1_000_000.0, &mut d, &mut stats);
        assert_eq!(stats.ml1_parallel_correct, 1, "{stats:?}");
    }

    #[test]
    fn ml2_access_migrates_page_up() {
        let (mut s, _pt) = build(TmccToggles::full(), 2000, 1200);
        let mut d = dram();
        let mut stats = SimStats::default();
        // The last page surely landed in ML2.
        let victim = (0..2000)
            .rev()
            .find(|i| matches!(s.pages[&(*i as u64)].place, Placement::Ml2 { .. }))
            .expect("an ML2 page exists") as u64;
        let lat = s.access(&read_req(victim, true), 0.0, &mut d, &mut stats);
        assert_eq!(stats.ml2_reads, 1);
        assert_eq!(stats.ml2_to_ml1_migrations, 1);
        assert!(
            matches!(s.pages[&victim].place, Placement::Ml1 { .. }),
            "page must now be in ML1"
        );
        // Fast-deflate latency: ~140 ns decompress + DRAM.
        assert!(lat > 100.0 && lat < 1_000.0, "latency {lat}");
    }

    #[test]
    fn slow_deflate_makes_ml2_access_slower() {
        let mk = |toggles| {
            let (mut s, _pt) = build(toggles, 2000, 1200);
            let mut d = dram();
            let mut stats = SimStats::default();
            let victim = (0..2000)
                .rev()
                .find(|i| matches!(s.pages[&(*i as u64)].place, Placement::Ml2 { .. }))
                .expect("ml2 page") as u64;
            s.access(&read_req(victim, true), 0.0, &mut d, &mut stats)
        };
        let fast = mk(TmccToggles::full());
        let slow = mk(TmccToggles::ml1_only());
        assert!(slow > fast + 400.0, "IBM-speed ML2: {slow} vs fast {fast}");
    }

    #[test]
    fn maintain_replenishes_free_list() {
        let (mut s, _pt) = build(TmccToggles::full(), 2000, 1200);
        let mut d = dram();
        let mut stats = SimStats::default();
        // Drain the free list below the low-water mark.
        while s.ml1_free.len() >= s.evict_lo {
            let _ = s.ml1_free.pop();
        }
        let drained = s.ml1_free.len();
        s.maintain(0.0, &mut d, &mut stats);
        assert!(s.ml1_free.len() > drained, "eviction must free frames");
        assert!(stats.ml1_to_ml2_migrations > 0);
    }

    #[test]
    fn incompressible_pages_stay_and_are_flagged() {
        let mut pt = PageTable::new(PageTableConfig::default());
        for i in 0..500u64 {
            pt.map(Vpn::new(i), Ppn::new(i));
        }
        let model = SizeModel::from_samples(vec![PageSizes {
            deflate_bytes: 4099, // cannot fit any ML2 class
            block_bytes: 4096,
        }]);
        let mut s = TwoLevelScheme::new(
            TmccToggles::full(),
            CteCacheConfig::tmcc(),
            model,
            &pt,
            500,
            600,
            7,
            0.15,
        );
        let mut d = dram();
        let mut stats = SimStats::default();
        while s.ml1_free.len() >= s.evict_lo {
            let _ = s.ml1_free.pop();
        }
        s.maintain(0.0, &mut d, &mut stats);
        assert!(stats.incompressible_evictions > 0);
        assert_eq!(stats.ml1_to_ml2_migrations, 0);
        let flagged = s.pages.values().filter(|p| p.cte.is_incompressible()).count();
        assert!(flagged > 0);
    }
}
