//! The no-compression baseline: physical addresses *are* DRAM addresses.
//!
//! This is the "No Compression" system of Fig. 18: an LLC miss goes
//! straight to DRAM with no CTE translation of any kind.

use super::{MemRequest, Scheme};
use crate::config::SchemeKind;
use crate::error::TmccError;
use crate::stats::SimStats;
use tmcc_sim_dram::DramSim;
use tmcc_types::addr::DramAddr;

/// The conventional memory system.
#[derive(Debug, Clone)]
pub struct NoCompressionScheme {
    footprint_bytes: u64,
}

impl NoCompressionScheme {
    /// Creates the scheme for a workload of `footprint_bytes`.
    pub fn new(footprint_bytes: u64) -> Self {
        Self { footprint_bytes }
    }
}

impl Scheme for NoCompressionScheme {
    fn kind(&self) -> SchemeKind {
        SchemeKind::NoCompression
    }

    fn access(
        &mut self,
        req: &MemRequest,
        now_ns: f64,
        dram: &mut DramSim,
        _stats: &mut SimStats,
    ) -> Result<f64, TmccError> {
        Ok(dram.access_latency(now_ns, DramAddr::new(req.block.base().raw()), req.write))
    }

    fn writeback(
        &mut self,
        req: &MemRequest,
        now_ns: f64,
        dram: &mut DramSim,
        _stats: &mut SimStats,
    ) -> Result<(), TmccError> {
        let _ = dram.access_background(now_ns, DramAddr::new(req.block.base().raw()), true);
        Ok(())
    }

    fn dram_used_bytes(&self) -> u64 {
        self.footprint_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmcc_sim_dram::{DramConfig, InterleavePolicy};
    use tmcc_types::addr::{BlockAddr, Ppn};

    #[test]
    fn access_is_one_dram_trip() {
        let mut dram = DramSim::new(DramConfig::default(), InterleavePolicy::baseline());
        let mut scheme = NoCompressionScheme::new(4096);
        let mut stats = SimStats::default();
        let req = MemRequest {
            ppn: Ppn::new(1),
            block: BlockAddr::new(64),
            write: false,
            is_ptb: false,
            after_tlb_miss: false,
        };
        let lat = scheme.access(&req, 0.0, &mut dram, &mut stats).unwrap();
        // One activate + CAS + burst: 30 ns.
        assert!((lat - 30.0).abs() < 0.5, "{lat}");
        assert_eq!(stats.cte_misses, 0, "no CTEs in this scheme");
    }
}
