//! Dense per-page state storage for the hot access path.
//!
//! The simulator's physical page numbers are dense by construction: data
//! pages are identity-mapped from 0, and page-table pages are allocated
//! sequentially from the table-region base (`PageTable::table_region_base`,
//! 2^26 by default). [`PageSlab`] exploits that layout to key per-page
//! state by a compact [`PageId`] handle derived *arithmetically* from the
//! PPN — one comparison and one subtraction — so the steady-state access
//! path indexes two `Vec`s instead of hashing into a `HashMap` on every
//! page touch.
//!
//! A `PageId` is allocated implicitly at first touch (`insert` grows the
//! backing region to cover the index) and stays valid for the page's
//! lifetime; the scheme derives it once per request and reuses it for
//! every lookup the request needs.

/// Compact handle of a page's slot in a [`PageSlab`]: a region bit (data
/// vs. table) plus the index within the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageId(u32);

/// Region bit: set for table-region pages. Shared with
/// [`crate::page_meta::PageMetaStore`], which derives handles with the
/// same arithmetic over the same two-region layout.
pub(crate) const TABLE_BIT: u32 = 1 << 31;

impl PageId {
    /// Rebuilds a handle from its raw encoding (region bit | index).
    #[inline]
    pub(crate) fn from_raw(raw: u32) -> Self {
        Self(raw)
    }

    /// The region-local index.
    #[inline]
    pub(crate) fn index(self) -> usize {
        (self.0 & !TABLE_BIT) as usize
    }

    /// Whether the handle points into the table region.
    #[inline]
    pub(crate) fn is_table(self) -> bool {
        self.0 & TABLE_BIT != 0
    }
}

/// Per-page state keyed by dense PPN, split into the two dense regions of
/// the simulator's physical layout.
#[derive(Debug, Clone)]
pub struct PageSlab<T> {
    /// Data-page region: index = PPN (PPNs below `table_base`).
    data: Vec<Option<T>>,
    /// Table-page region: index = PPN − `table_base`.
    table: Vec<Option<T>>,
    /// First PPN of the table region.
    table_base: u64,
    len: usize,
}

impl<T> PageSlab<T> {
    /// Creates an empty slab for a physical layout whose table pages start
    /// at `table_base`.
    pub fn new(table_base: u64) -> Self {
        Self { data: Vec::new(), table: Vec::new(), table_base, len: 0 }
    }

    /// Derives the compact handle for `ppn` — pure arithmetic, no hashing.
    /// `None` when the PPN cannot be a slab index (outside both dense
    /// regions' representable range).
    #[inline]
    pub fn id_of(&self, ppn: u64) -> Option<PageId> {
        if ppn < self.table_base {
            (ppn < TABLE_BIT as u64).then_some(PageId(ppn as u32))
        } else {
            let off = ppn - self.table_base;
            (off < TABLE_BIT as u64).then_some(PageId(off as u32 | TABLE_BIT))
        }
    }

    #[inline]
    fn region(&self, id: PageId) -> &Vec<Option<T>> {
        if id.is_table() {
            &self.table
        } else {
            &self.data
        }
    }

    /// Number of pages with state.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The state of the page behind a handle.
    #[inline]
    pub fn get_id(&self, id: PageId) -> Option<&T> {
        self.region(id).get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable state of the page behind a handle.
    #[inline]
    pub fn get_id_mut(&mut self, id: PageId) -> Option<&mut T> {
        let idx = id.index();
        let region = if id.is_table() { &mut self.table } else { &mut self.data };
        region.get_mut(idx).and_then(Option::as_mut)
    }

    /// The state of page `ppn`.
    #[inline]
    pub fn get(&self, ppn: u64) -> Option<&T> {
        self.get_id(self.id_of(ppn)?)
    }

    /// Mutable state of page `ppn`.
    #[inline]
    pub fn get_mut(&mut self, ppn: u64) -> Option<&mut T> {
        let id = self.id_of(ppn)?;
        self.get_id_mut(id)
    }

    /// Inserts (or replaces) state for page `ppn`, allocating its slot on
    /// first touch. Returns the previous state, if any.
    ///
    /// # Panics
    ///
    /// Panics if `ppn` lies outside both dense regions.
    pub fn insert(&mut self, ppn: u64, value: T) -> Option<T> {
        let id = self
            .id_of(ppn)
            .unwrap_or_else(|| panic!("page {ppn:#x} outside the slab's dense regions"));
        let idx = id.index();
        let region = if id.is_table() { &mut self.table } else { &mut self.data };
        if idx >= region.len() {
            region.resize_with(idx + 1, || None);
        }
        let prev = region[idx].replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Iterates `(ppn, state)` pairs: the data region in PPN order, then
    /// the table region.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        let base = self.table_base;
        self.data.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|v| (i as u64, v))).chain(
            self.table
                .iter()
                .enumerate()
                .filter_map(move |(i, s)| s.as_ref().map(move |v| (base + i as u64, v))),
        )
    }

    /// Iterates the stored states.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 1 << 26;

    #[test]
    fn insert_get_both_regions() {
        let mut s: PageSlab<u32> = PageSlab::new(BASE);
        assert!(s.insert(5, 50).is_none());
        assert!(s.insert(BASE + 3, 33).is_none());
        assert_eq!(s.get(5), Some(&50));
        assert_eq!(s.get(BASE + 3), Some(&33));
        assert_eq!(s.get(6), None);
        assert_eq!(s.get(BASE + 4), None);
        assert_eq!(s.len(), 2);
        *s.get_mut(5).unwrap() += 1;
        assert_eq!(s.get(5), Some(&51));
    }

    #[test]
    fn ids_round_trip_and_replace_counts_once() {
        let mut s: PageSlab<&str> = PageSlab::new(BASE);
        s.insert(7, "a");
        assert_eq!(s.insert(7, "b"), Some("a"));
        assert_eq!(s.len(), 1);
        let id = s.id_of(7).unwrap();
        assert_eq!(s.get_id(id), Some(&"b"));
        let tid = s.id_of(BASE).unwrap();
        assert_ne!(id, tid);
        assert_eq!(s.get_id(tid), None, "table slot untouched");
    }

    #[test]
    fn iter_is_dense_ppn_order() {
        let mut s: PageSlab<u8> = PageSlab::new(BASE);
        s.insert(BASE + 1, 4);
        s.insert(2, 2);
        s.insert(0, 1);
        s.insert(BASE, 3);
        let pairs: Vec<(u64, u8)> = s.iter().map(|(p, &v)| (p, v)).collect();
        assert_eq!(pairs, vec![(0, 1), (2, 2), (BASE, 3), (BASE + 1, 4)]);
        assert_eq!(s.values().count(), 4);
    }

    #[test]
    fn out_of_range_ppn_has_no_id() {
        let s: PageSlab<u8> = PageSlab::new(BASE);
        assert!(s.id_of(BASE - 1).is_some());
        assert!(s.id_of(BASE + (1 << 31)).is_none());
    }
}
