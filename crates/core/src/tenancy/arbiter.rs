//! The shared-pool capacity arbiter.
//!
//! The arbiter owns the frame ledger: how many frames the pool has, which
//! roster slot holds how many, and whether a candidate tenant can be
//! admitted without pushing an incumbent below its guarantee. It never
//! touches a tenant's `System` — the
//! [`MultiTenantSystem`](super::MultiTenantSystem) translates allocation
//! deltas into balloon faults ([`FaultKind::ShrinkBudget`] /
//! [`FaultKind::GrowBudget`](crate::config::FaultKind::GrowBudget)) on the
//! tenant simulators.
//!
//! # The incremental demand ledger
//!
//! At fleet scale (thousands of tenants) the old API — every caller
//! collects a fresh `Vec<(slot, TenantDemand)>` of the whole roster for
//! every churn/fault/balloon event — made each event O(n) and each round
//! O(n²). The arbiter now *owns* the demand ledger: callers push
//! single-slot deltas ([`CapacityArbiter::set_demand`] /
//! [`CapacityArbiter::clear_demand`]), which maintain the guarantee and
//! weight aggregates incrementally in O(1), and the global allocation is
//! recomputed once per batch by [`CapacityArbiter::rebalance`] — an
//! O(active) pass over arbiter-owned scratch buffers, allocation-free in
//! steady state and amortized to O(1) per tenant quantum by the round
//! barrier. Admission checks ([`CapacityArbiter::can_admit`]) read the
//! aggregate instead of re-summing the roster, so they are O(1) too.
//!
//! Debug builds cross-check every rebalance against a from-scratch
//! reference recompute ([`CapacityArbiter::reference_check`]); the
//! tenancy proptests drive the same check over random churn×fault
//! interleavings.

#[cfg(doc)]
use crate::config::FaultKind;
use crate::error::TmccError;

use super::qos::{AllocScratch, QosPolicyKind, TenantDemand};

/// Arbiter-owned working memory for [`CapacityArbiter::rebalance`].
#[derive(Debug, Default)]
struct RebalanceScratch {
    /// Active demands, densely packed in roster order.
    demands: Vec<TenantDemand>,
    /// Roster slot of each packed demand.
    slots: Vec<usize>,
    /// Allocation per packed demand (policy output).
    alloc: Vec<u32>,
    /// Policy-internal scratch (caps + waterfilling worklist).
    qos: AllocScratch,
}

/// The frame ledger for one shared compressed pool.
#[derive(Debug)]
pub struct CapacityArbiter {
    pool_frames: u64,
    policy: QosPolicyKind,
    /// Allocation per roster slot; `None` while the slot is inactive.
    allocations: Vec<Option<u32>>,
    /// Demand per roster slot; `None` while the slot is inactive. The
    /// single source of truth for rebalances — callers maintain it with
    /// [`CapacityArbiter::set_demand`] / [`CapacityArbiter::clear_demand`].
    demands: Vec<Option<TenantDemand>>,
    /// Σ `guaranteed()` over active slots (incrementally maintained).
    guaranteed_total: u64,
    /// Σ `weight.max(1)` over active slots (incrementally maintained).
    weight_total: u64,
    /// Number of active slots.
    active_count: usize,
    /// Set by ledger/pool mutations; cleared by a rebalance. A clean
    /// arbiter's `rebalance` is a no-op (no breach accounting either).
    dirty: bool,
    /// Rounds in which at least one active tenant sat below its
    /// guarantee (possible only while a pool shrink has the guarantees
    /// oversubscribed). Saturating.
    guarantee_breach_rounds: u64,
    scratch: RebalanceScratch,
}

impl CapacityArbiter {
    /// A fresh arbiter over `pool_frames` frames and `slots` roster
    /// slots, all inactive.
    pub fn new(pool_frames: u64, policy: QosPolicyKind, slots: usize) -> Self {
        Self {
            pool_frames,
            policy,
            allocations: vec![None; slots],
            demands: vec![None; slots],
            guaranteed_total: 0,
            weight_total: 0,
            active_count: 0,
            dirty: false,
            guarantee_breach_rounds: 0,
            scratch: RebalanceScratch::default(),
        }
    }

    /// Frames the pool currently holds.
    pub fn pool_frames(&self) -> u64 {
        self.pool_frames
    }

    /// The policy in force.
    pub fn policy(&self) -> QosPolicyKind {
        self.policy
    }

    /// The slot's current allocation, if active.
    pub fn allocation(&self, slot: usize) -> Option<u32> {
        self.allocations.get(slot).copied().flatten()
    }

    /// The slot's ledgered demand, if active.
    pub fn demand(&self, slot: usize) -> Option<TenantDemand> {
        self.demands.get(slot).copied().flatten()
    }

    /// Σ guarantees over the active roster (incrementally maintained).
    pub fn guaranteed_total(&self) -> u64 {
        self.guaranteed_total
    }

    /// Σ weights over the active roster (incrementally maintained).
    pub fn weight_total(&self) -> u64 {
        self.weight_total
    }

    /// Number of active slots.
    pub fn active_tenants(&self) -> usize {
        self.active_count
    }

    /// True when ledger or pool mutations since the last
    /// [`CapacityArbiter::rebalance`] have not yet been materialized.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Rounds spent with some guarantee breached (pool-shrink storms).
    pub fn guarantee_breach_rounds(&self) -> u64 {
        self.guarantee_breach_rounds
    }

    /// Balloon deflation at pool scope.
    pub fn shrink_pool(&mut self, frames: u64) {
        self.pool_frames = self.pool_frames.saturating_sub(frames);
        self.dirty = true;
    }

    /// Balloon inflation at pool scope.
    pub fn grow_pool(&mut self, frames: u64) {
        self.pool_frames = self.pool_frames.saturating_add(frames);
        self.dirty = true;
    }

    /// Upserts one slot's demand, updating the guarantee/weight
    /// aggregates by delta — O(1), the per-event fast path. The slot's
    /// allocation is untouched until the next batched
    /// [`CapacityArbiter::rebalance`] (demand moves never change
    /// `guaranteed()`, so existing allocations stay invariant-clean).
    pub fn set_demand(&mut self, slot: usize, demand: TenantDemand) {
        let prev = self.demands[slot].replace(demand);
        match prev {
            Some(p) => {
                self.guaranteed_total =
                    self.guaranteed_total + demand.guaranteed() as u64 - p.guaranteed() as u64;
                self.weight_total =
                    self.weight_total + demand.weight.max(1) as u64 - p.weight.max(1) as u64;
            }
            None => {
                self.guaranteed_total += demand.guaranteed() as u64;
                self.weight_total += demand.weight.max(1) as u64;
                self.active_count += 1;
            }
        }
        self.dirty = true;
        self.debug_check_aggregates();
    }

    /// Removes one slot's demand and allocation — O(1). The freed frames
    /// rejoin the pool's unallocated reserve until the next rebalance.
    pub fn clear_demand(&mut self, slot: usize) {
        if let Some(p) = self.demands.get_mut(slot).and_then(Option::take) {
            self.guaranteed_total -= p.guaranteed() as u64;
            self.weight_total -= p.weight.max(1) as u64;
            self.active_count -= 1;
            self.dirty = true;
        }
        if let Some(a) = self.allocations.get_mut(slot) {
            *a = None;
        }
        self.debug_check_aggregates();
    }

    /// Releases a departing tenant's frames back to the pool (alias of
    /// [`CapacityArbiter::clear_demand`], kept for the departure call
    /// sites' vocabulary).
    pub fn release(&mut self, slot: usize) {
        self.clear_demand(slot);
    }

    /// Recomputes every active tenant's allocation under the policy from
    /// the demand ledger. Breach accounting advances when the pool cannot
    /// cover the sum of guarantees. A clean (non-dirty) arbiter returns
    /// immediately, so batched same-round events cost one materialization
    /// total. Steady-state calls are allocation-free (arbiter-owned
    /// scratch).
    pub fn rebalance(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        if self.guaranteed_total > self.pool_frames && self.active_count > 0 {
            self.guarantee_breach_rounds = self.guarantee_breach_rounds.saturating_add(1);
        }
        let s = &mut self.scratch;
        s.demands.clear();
        s.slots.clear();
        for (slot, d) in self.demands.iter().enumerate() {
            if let Some(d) = d {
                s.demands.push(*d);
                s.slots.push(slot);
            }
        }
        self.policy.policy().allocate_into(self.pool_frames, &s.demands, &mut s.alloc, &mut s.qos);
        for a in self.allocations.iter_mut() {
            *a = None;
        }
        for (&slot, &frames) in s.slots.iter().zip(&s.alloc) {
            self.allocations[slot] = Some(frames);
        }
        #[cfg(debug_assertions)]
        self.reference_check().expect("incremental arbiter diverged from reference");
    }

    /// Admission check: would admitting a tenant with `candidate`'s
    /// demand leave every incumbent (and the candidate) at or above its
    /// guarantee? Pure and O(1) — reads the incrementally maintained
    /// guarantee aggregate; the ledger is only updated by the
    /// [`CapacityArbiter::set_demand`] + [`CapacityArbiter::rebalance`]
    /// the caller performs after building the tenant.
    pub fn can_admit(&self, candidate: TenantDemand) -> bool {
        self.guaranteed_total + candidate.guaranteed() as u64 <= self.pool_frames
    }

    /// Ledger invariant: the active allocations never oversubscribe the
    /// pool, allocations only exist where demands do, and the incremental
    /// aggregates match a from-scratch recount.
    pub fn validate(&self) -> Result<(), TmccError> {
        let total: u64 = self.allocations.iter().flatten().map(|&a| a as u64).sum();
        if total > self.pool_frames {
            return Err(TmccError::InvariantViolation {
                detail: format!(
                    "arbiter oversubscribed: {total} frames allocated, pool holds {}",
                    self.pool_frames
                ),
            });
        }
        for (slot, (a, d)) in self.allocations.iter().zip(&self.demands).enumerate() {
            if a.is_some() && d.is_none() {
                return Err(TmccError::InvariantViolation {
                    detail: format!("arbiter slot {slot} holds an allocation but no demand"),
                });
            }
        }
        let guaranteed: u64 = self.demands.iter().flatten().map(|d| d.guaranteed() as u64).sum();
        let weight: u64 = self.demands.iter().flatten().map(|d| d.weight.max(1) as u64).sum();
        let active = self.demands.iter().flatten().count();
        if guaranteed != self.guaranteed_total
            || weight != self.weight_total
            || active != self.active_count
        {
            return Err(TmccError::InvariantViolation {
                detail: format!(
                    "arbiter aggregates drifted: guaranteed {} (ledger {guaranteed}), \
                     weight {} (ledger {weight}), active {} (ledger {active})",
                    self.guaranteed_total, self.weight_total, self.active_count
                ),
            });
        }
        Ok(())
    }

    /// The retained full-recompute reference: rebuilds the demand list
    /// and allocation vector from scratch with a fresh policy call and
    /// compares against the incremental ledger. Debug builds run this
    /// after every rebalance; the tenancy proptests call it after every
    /// churn/fault event.
    pub fn reference_check(&self) -> Result<(), TmccError> {
        self.validate()?;
        if self.dirty {
            // Pending deltas are by definition not materialized yet; the
            // reference compares materialized states only.
            return Ok(());
        }
        let mut demands = Vec::new();
        let mut slots = Vec::new();
        for (slot, d) in self.demands.iter().enumerate() {
            if let Some(d) = d {
                demands.push(*d);
                slots.push(slot);
            }
        }
        let reference = self.policy.policy().allocate(self.pool_frames, &demands);
        let mut expect = vec![None; self.allocations.len()];
        for (&slot, &frames) in slots.iter().zip(&reference) {
            expect[slot] = Some(frames);
        }
        if expect != self.allocations {
            return Err(TmccError::InvariantViolation {
                detail: format!(
                    "incremental allocations {:?} != reference {:?}",
                    self.allocations, expect
                ),
            });
        }
        Ok(())
    }

    #[inline]
    fn debug_check_aggregates(&self) {
        #[cfg(debug_assertions)]
        {
            let guaranteed: u64 =
                self.demands.iter().flatten().map(|d| d.guaranteed() as u64).sum();
            let weight: u64 = self.demands.iter().flatten().map(|d| d.weight.max(1) as u64).sum();
            debug_assert_eq!(guaranteed, self.guaranteed_total, "guarantee aggregate drifted");
            debug_assert_eq!(weight, self.weight_total, "weight aggregate drifted");
            debug_assert_eq!(
                self.demands.iter().flatten().count(),
                self.active_count,
                "active count drifted"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(weight: u32, floor: u32, demand: u32) -> TenantDemand {
        TenantDemand { weight, floor_frames: floor, min_frames: floor, demand_frames: demand }
    }

    #[test]
    fn rebalance_updates_ledger_and_validates() {
        let mut arb = CapacityArbiter::new(1000, QosPolicyKind::ProportionalShare, 3);
        arb.set_demand(0, d(1, 100, 400));
        arb.set_demand(2, d(1, 100, 400));
        arb.rebalance();
        assert!(arb.allocation(0).is_some());
        assert!(arb.allocation(1).is_none());
        assert!(arb.allocation(2).is_some());
        assert!(arb.validate().is_ok());
        assert!(arb.reference_check().is_ok());
        arb.release(0);
        assert!(arb.allocation(0).is_none());
        assert_eq!(arb.active_tenants(), 1);
    }

    #[test]
    fn admission_rejects_oversubscribed_guarantees() {
        let mut arb = CapacityArbiter::new(300, QosPolicyKind::ProportionalShare, 2);
        arb.set_demand(0, d(1, 100, 200));
        arb.rebalance();
        assert!(arb.can_admit(d(1, 150, 200)));
        assert!(!arb.can_admit(d(1, 250, 300)));
    }

    #[test]
    fn pool_ballooning_counts_breach_rounds() {
        let mut arb = CapacityArbiter::new(400, QosPolicyKind::StrictPartition, 2);
        arb.set_demand(0, d(1, 150, 200));
        arb.set_demand(1, d(1, 150, 200));
        arb.rebalance();
        assert_eq!(arb.guarantee_breach_rounds(), 0);
        arb.shrink_pool(200);
        arb.rebalance();
        assert_eq!(arb.guarantee_breach_rounds(), 1);
        assert!(arb.validate().is_ok());
        arb.grow_pool(200);
        arb.rebalance();
        assert_eq!(arb.guarantee_breach_rounds(), 1);
    }

    #[test]
    fn clean_rebalance_is_a_no_op_and_batches_breach_accounting() {
        let mut arb = CapacityArbiter::new(100, QosPolicyKind::ProportionalShare, 4);
        arb.set_demand(0, d(1, 80, 90));
        arb.set_demand(1, d(1, 80, 90));
        // Two deltas, one materialization, one breach increment.
        arb.rebalance();
        assert_eq!(arb.guarantee_breach_rounds(), 1);
        // Clean arbiter: no-op, no extra breach accounting.
        arb.rebalance();
        arb.rebalance();
        assert_eq!(arb.guarantee_breach_rounds(), 1);
        assert!(!arb.is_dirty());
    }

    #[test]
    fn demand_deltas_keep_aggregates_incremental() {
        let mut arb = CapacityArbiter::new(10_000, QosPolicyKind::BestEffortFloors, 8);
        for slot in 0..8 {
            arb.set_demand(slot, d(1 + slot as u32 % 3, 50, 200));
        }
        arb.rebalance();
        let before = arb.guaranteed_total();
        // A pure demand spike moves no guarantee and no weight.
        arb.set_demand(3, d(1, 50, 900));
        assert_eq!(arb.guaranteed_total(), before);
        arb.rebalance();
        assert!(arb.reference_check().is_ok());
        // Departures subtract exactly their contribution.
        arb.clear_demand(3);
        assert_eq!(arb.guaranteed_total(), before - 50);
        assert_eq!(arb.active_tenants(), 7);
        arb.rebalance();
        assert!(arb.reference_check().is_ok());
    }
}
