//! The shared-pool capacity arbiter.
//!
//! The arbiter owns the frame ledger: how many frames the pool has, which
//! roster slot holds how many, and whether a candidate tenant can be
//! admitted without pushing an incumbent below its guarantee. It never
//! touches a tenant's `System` — the
//! [`MultiTenantSystem`](super::MultiTenantSystem) translates allocation
//! deltas into balloon faults ([`FaultKind::ShrinkBudget`] /
//! [`FaultKind::GrowBudget`](crate::config::FaultKind::GrowBudget)) on the
//! tenant simulators.

#[cfg(doc)]
use crate::config::FaultKind;
use crate::error::TmccError;

use super::qos::{QosPolicyKind, TenantDemand};

/// The frame ledger for one shared compressed pool.
#[derive(Debug)]
pub struct CapacityArbiter {
    pool_frames: u64,
    policy: QosPolicyKind,
    /// Allocation per roster slot; `None` while the slot is inactive.
    allocations: Vec<Option<u32>>,
    /// Rounds in which at least one active tenant sat below its
    /// guarantee (possible only while a pool shrink has the guarantees
    /// oversubscribed). Saturating.
    guarantee_breach_rounds: u64,
}

impl CapacityArbiter {
    /// A fresh arbiter over `pool_frames` frames and `slots` roster
    /// slots, all inactive.
    pub fn new(pool_frames: u64, policy: QosPolicyKind, slots: usize) -> Self {
        Self { pool_frames, policy, allocations: vec![None; slots], guarantee_breach_rounds: 0 }
    }

    /// Frames the pool currently holds.
    pub fn pool_frames(&self) -> u64 {
        self.pool_frames
    }

    /// The policy in force.
    pub fn policy(&self) -> QosPolicyKind {
        self.policy
    }

    /// The slot's current allocation, if active.
    pub fn allocation(&self, slot: usize) -> Option<u32> {
        self.allocations.get(slot).copied().flatten()
    }

    /// Rounds spent with some guarantee breached (pool-shrink storms).
    pub fn guarantee_breach_rounds(&self) -> u64 {
        self.guarantee_breach_rounds
    }

    /// Balloon deflation at pool scope.
    pub fn shrink_pool(&mut self, frames: u64) {
        self.pool_frames = self.pool_frames.saturating_sub(frames);
    }

    /// Balloon inflation at pool scope.
    pub fn grow_pool(&mut self, frames: u64) {
        self.pool_frames = self.pool_frames.saturating_add(frames);
    }

    /// Recomputes every active tenant's allocation under the policy.
    /// `active` pairs each active slot with its current demand, in roster
    /// order. Returns `(slot, new_allocation)` per active tenant and
    /// updates the ledger; breach accounting advances when the pool
    /// cannot cover the sum of guarantees.
    pub fn rebalance(&mut self, active: &[(usize, TenantDemand)]) -> Vec<(usize, u32)> {
        let demands: Vec<TenantDemand> = active.iter().map(|(_, d)| *d).collect();
        let guaranteed: u64 = demands.iter().map(|d| d.guaranteed() as u64).sum();
        if guaranteed > self.pool_frames && !active.is_empty() {
            self.guarantee_breach_rounds = self.guarantee_breach_rounds.saturating_add(1);
        }
        let alloc = self.policy.policy().allocate(self.pool_frames, &demands);
        for a in self.allocations.iter_mut() {
            *a = None;
        }
        let mut out = Vec::with_capacity(active.len());
        for (&(slot, _), &frames) in active.iter().zip(&alloc) {
            self.allocations[slot] = Some(frames);
            out.push((slot, frames));
        }
        out
    }

    /// Admission check: would admitting a tenant with `candidate`'s
    /// demand leave every incumbent (and the candidate) at or above its
    /// guarantee? Pure — the ledger is only updated by the
    /// [`CapacityArbiter::rebalance`] the caller performs after building
    /// the tenant.
    pub fn can_admit(&self, incumbents: &[TenantDemand], candidate: TenantDemand) -> bool {
        let mut demands: Vec<TenantDemand> = incumbents.to_vec();
        demands.push(candidate);
        let guaranteed: u64 = demands.iter().map(|d| d.guaranteed() as u64).sum();
        guaranteed <= self.pool_frames
    }

    /// Releases a departing tenant's frames back to the pool.
    pub fn release(&mut self, slot: usize) {
        if let Some(a) = self.allocations.get_mut(slot) {
            *a = None;
        }
    }

    /// Ledger invariant: the active allocations never oversubscribe the
    /// pool.
    pub fn validate(&self) -> Result<(), TmccError> {
        let total: u64 = self.allocations.iter().flatten().map(|&a| a as u64).sum();
        if total > self.pool_frames {
            return Err(TmccError::InvariantViolation {
                detail: format!(
                    "arbiter oversubscribed: {total} frames allocated, pool holds {}",
                    self.pool_frames
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(weight: u32, floor: u32, demand: u32) -> TenantDemand {
        TenantDemand { weight, floor_frames: floor, min_frames: floor, demand_frames: demand }
    }

    #[test]
    fn rebalance_updates_ledger_and_validates() {
        let mut arb = CapacityArbiter::new(1000, QosPolicyKind::ProportionalShare, 3);
        let out = arb.rebalance(&[(0, d(1, 100, 400)), (2, d(1, 100, 400))]);
        assert_eq!(out.len(), 2);
        assert!(arb.allocation(0).is_some());
        assert!(arb.allocation(1).is_none());
        assert!(arb.validate().is_ok());
        arb.release(0);
        assert!(arb.allocation(0).is_none());
    }

    #[test]
    fn admission_rejects_oversubscribed_guarantees() {
        let arb = CapacityArbiter::new(300, QosPolicyKind::ProportionalShare, 2);
        assert!(arb.can_admit(&[d(1, 100, 200)], d(1, 150, 200)));
        assert!(!arb.can_admit(&[d(1, 100, 200)], d(1, 250, 300)));
    }

    #[test]
    fn pool_ballooning_counts_breach_rounds() {
        let mut arb = CapacityArbiter::new(400, QosPolicyKind::StrictPartition, 2);
        arb.rebalance(&[(0, d(1, 150, 200)), (1, d(1, 150, 200))]);
        assert_eq!(arb.guarantee_breach_rounds(), 0);
        arb.shrink_pool(200);
        arb.rebalance(&[(0, d(1, 150, 200)), (1, d(1, 150, 200))]);
        assert_eq!(arb.guarantee_breach_rounds(), 1);
        assert!(arb.validate().is_ok());
        arb.grow_pool(200);
        arb.rebalance(&[(0, d(1, 150, 200)), (1, d(1, 150, 200))]);
        assert_eq!(arb.guarantee_breach_rounds(), 1);
    }
}
