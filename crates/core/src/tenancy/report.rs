//! Multi-tenant run reports.
//!
//! One [`TenantReport`] per roster slot (whether or not the tenant was
//! ever admitted) rolled up into a [`MultiTenantReport`]. Like
//! [`RunReport`], both types round-trip exactly through the vendored
//! serde stand-in — `from_value` is the strict decode half the sweep
//! journal uses to replay finished multi-tenant points after a crash.

use crate::stats::RunReport;
use serde::{Serialize, Value};

use super::qos::QosPolicyKind;

/// Outcome and counters for one roster slot.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantReport {
    /// Tenant name (unique within the roster).
    pub name: String,
    /// Whether the tenant was ever admitted.
    pub admitted: bool,
    /// Admission attempts the arbiter turned down.
    pub rejections: u64,
    /// Global access count at (last) admission.
    pub arrived_at: Option<u64>,
    /// Global access count at departure, if the tenant left.
    pub departed_at: Option<u64>,
    /// Simulation error that forced the tenant out, if any. A faulted
    /// tenant is evicted and its neighbours keep running — the error is
    /// recorded here instead of failing the scenario.
    pub fault: Option<String>,
    /// Share weight.
    pub weight: u32,
    /// Configured QoS floor, frames.
    pub floor_frames: u32,
    /// Configured steady-state demand, frames.
    pub demand_frames: u32,
    /// Allocation when the run ended (0 if inactive).
    pub alloc_frames: u32,
    /// Smallest allocation the tenant ever held while active (0 if it
    /// never held one) — the acceptance check for "achieved capacity
    /// never fell below the floor".
    pub min_alloc_frames: u32,
    /// Scheduling quanta executed.
    pub quanta: u64,
    /// Quanta executed at the quarantine-throttled (¼) rate.
    pub throttled_quanta: u64,
    /// Times the degradation ladder moved the tenant into quarantine.
    pub degraded_entries: u64,
    /// Times the tenant recovered and left quarantine.
    pub degraded_exits: u64,
    /// Balloon-shrink faults the arbiter injected into this tenant.
    pub shrink_events: u64,
    /// Balloon-grow faults the arbiter injected into this tenant.
    pub grow_events: u64,
    /// Rounds this tenant spent below its guarantee (pool-shrink storms).
    pub guarantee_breach_rounds: u64,
    /// Bit flips injected into this tenant's memory system — the blast
    /// radius of an integrity storm is per-tenant by construction (each
    /// tenant owns its frames, seals and CTE directory), and these
    /// counters prove it: a neighbour's flips never appear here.
    pub flips_injected: u64,
    /// Flips the tenant's seals/parity caught.
    pub corruptions_detected: u64,
    /// Detected flips repaired (regeneration, raw fallback, scrub).
    pub corruptions_corrected: u64,
    /// Detected flips beyond repair (frame poisoned).
    pub corruptions_uncorrectable: u64,
    /// Flips that escaped detection — silent data corruption.
    pub sdc_escapes: u64,
    /// Frames the poison rung took out of this tenant's budget.
    pub frames_poisoned: u64,
    /// Measured accesses the tenant executed.
    pub measured_accesses: u64,
    /// Median per-access memory latency (fixed-bin log₂ histogram upper
    /// bound, ns) over the tenant's measured window; 0 if never admitted.
    pub lat_p50_ns: u64,
    /// 95th-percentile per-access memory latency (bin upper bound, ns).
    pub lat_p95_ns: u64,
    /// 99th-percentile per-access memory latency (bin upper bound, ns).
    pub lat_p99_ns: u64,
    /// 99.9th-percentile per-access memory latency (bin upper bound, ns).
    pub lat_p999_ns: u64,
    /// The tenant's own simulation report over its measured window
    /// (`None` if never admitted; present even for departed/faulted
    /// tenants, sealed at departure).
    pub report: Option<RunReport>,
}

/// The rolled-up result of one multi-tenant scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MultiTenantReport {
    /// QoS policy display name.
    pub policy: &'static str,
    /// Pool size when the run ended, frames (churn ballooning moves it).
    pub pool_frames: u64,
    /// Scheduling quantum, accesses.
    pub quantum: u64,
    /// Measured accesses executed across all tenants.
    pub total_accesses: u64,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Churn events applied.
    pub churn_events_applied: u64,
    /// Admissions the arbiter rejected (roster-wide).
    pub admission_rejections: u64,
    /// Rounds with some guarantee breached (arbiter-wide).
    pub guarantee_breach_rounds: u64,
    /// Fleet-wide median per-access memory latency: every tenant's
    /// fixed-bin histogram merged, then read at permille 500 (bin upper
    /// bound, ns).
    pub fleet_lat_p50_ns: u64,
    /// Fleet-wide 95th-percentile latency (bin upper bound, ns).
    pub fleet_lat_p95_ns: u64,
    /// Fleet-wide 99th-percentile latency (bin upper bound, ns).
    pub fleet_lat_p99_ns: u64,
    /// Fleet-wide 99.9th-percentile latency (bin upper bound, ns).
    pub fleet_lat_p999_ns: u64,
    /// Roster steady-demand oversubscription of the configured pool,
    /// ×100 (150 = demands sum to 1.5× the pool) — the frontier curve's
    /// x-coordinate.
    pub overcommit_x100: u64,
    /// DRAM bytes the still-active tenants occupied when the run ended —
    /// the frontier curve's achieved-footprint coordinate.
    pub achieved_footprint_bytes: u64,
    /// Tenant-rounds spent below guarantee, in parts per million of all
    /// tenant-rounds — the frontier curve's breach-rate coordinate.
    pub breach_rate_ppm: u64,
    /// One report per roster slot, in roster order.
    pub tenants: Vec<TenantReport>,
}

fn opt_u64(f: &mut serde::FieldReader<'_>, name: &str) -> Result<Option<u64>, String> {
    match f.value(name)? {
        Value::Null => Ok(None),
        v => v.as_u64().map(Some).ok_or_else(|| format!("TenantReport: {name} is not a u64")),
    }
}

impl TenantReport {
    /// Exact, strict inverse of this type's serialization (see
    /// [`RunReport::from_value`]).
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let mut f = serde::FieldReader::open(v, "TenantReport")?;
        let report = Self {
            name: f.str("name")?.to_string(),
            admitted: f.bool("admitted")?,
            rejections: f.u64("rejections")?,
            arrived_at: opt_u64(&mut f, "arrived_at")?,
            departed_at: opt_u64(&mut f, "departed_at")?,
            fault: match f.value("fault")? {
                Value::Null => None,
                v => Some(
                    v.as_str()
                        .ok_or_else(|| "TenantReport: fault is not a string".to_string())?
                        .to_string(),
                ),
            },
            weight: f.u64("weight")? as u32,
            floor_frames: f.u64("floor_frames")? as u32,
            demand_frames: f.u64("demand_frames")? as u32,
            alloc_frames: f.u64("alloc_frames")? as u32,
            min_alloc_frames: f.u64("min_alloc_frames")? as u32,
            quanta: f.u64("quanta")?,
            throttled_quanta: f.u64("throttled_quanta")?,
            degraded_entries: f.u64("degraded_entries")?,
            degraded_exits: f.u64("degraded_exits")?,
            shrink_events: f.u64("shrink_events")?,
            grow_events: f.u64("grow_events")?,
            guarantee_breach_rounds: f.u64("guarantee_breach_rounds")?,
            flips_injected: f.u64("flips_injected")?,
            corruptions_detected: f.u64("corruptions_detected")?,
            corruptions_corrected: f.u64("corruptions_corrected")?,
            corruptions_uncorrectable: f.u64("corruptions_uncorrectable")?,
            sdc_escapes: f.u64("sdc_escapes")?,
            frames_poisoned: f.u64("frames_poisoned")?,
            measured_accesses: f.u64("measured_accesses")?,
            lat_p50_ns: f.u64("lat_p50_ns")?,
            lat_p95_ns: f.u64("lat_p95_ns")?,
            lat_p99_ns: f.u64("lat_p99_ns")?,
            lat_p999_ns: f.u64("lat_p999_ns")?,
            report: match f.value("report")? {
                Value::Null => None,
                v => Some(RunReport::from_value(v)?),
            },
        };
        f.finish()?;
        Ok(report)
    }
}

impl MultiTenantReport {
    /// Exact, strict inverse of this type's serialization.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let mut f = serde::FieldReader::open(v, "MultiTenantReport")?;
        let policy_name = f.str("policy")?;
        let policy = QosPolicyKind::from_name(policy_name)
            .ok_or_else(|| format!("MultiTenantReport: unknown policy {policy_name:?}"))?
            .name();
        let tenants = f
            .value("tenants")?
            .as_seq()
            .ok_or_else(|| "MultiTenantReport: tenants is not an array".to_string())?
            .iter()
            .map(TenantReport::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let report = Self {
            policy,
            pool_frames: f.u64("pool_frames")?,
            quantum: f.u64("quantum")?,
            total_accesses: f.u64("total_accesses")?,
            rounds: f.u64("rounds")?,
            churn_events_applied: f.u64("churn_events_applied")?,
            admission_rejections: f.u64("admission_rejections")?,
            guarantee_breach_rounds: f.u64("guarantee_breach_rounds")?,
            fleet_lat_p50_ns: f.u64("fleet_lat_p50_ns")?,
            fleet_lat_p95_ns: f.u64("fleet_lat_p95_ns")?,
            fleet_lat_p99_ns: f.u64("fleet_lat_p99_ns")?,
            fleet_lat_p999_ns: f.u64("fleet_lat_p999_ns")?,
            overcommit_x100: f.u64("overcommit_x100")?,
            achieved_footprint_bytes: f.u64("achieved_footprint_bytes")?,
            breach_rate_ppm: f.u64("breach_rate_ppm")?,
            tenants,
        };
        f.finish()?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant() -> TenantReport {
        TenantReport {
            name: "t0".into(),
            admitted: true,
            rejections: 0,
            arrived_at: Some(0),
            departed_at: None,
            fault: None,
            weight: 1,
            floor_frames: 100,
            demand_frames: 200,
            alloc_frames: 180,
            min_alloc_frames: 120,
            quanta: 8,
            throttled_quanta: 2,
            degraded_entries: 1,
            degraded_exits: 1,
            shrink_events: 1,
            grow_events: 1,
            guarantee_breach_rounds: 0,
            flips_injected: 6,
            corruptions_detected: 5,
            corruptions_corrected: 4,
            corruptions_uncorrectable: 1,
            sdc_escapes: 1,
            frames_poisoned: 1,
            measured_accesses: 4096,
            lat_p50_ns: 128,
            lat_p95_ns: 512,
            lat_p99_ns: 2048,
            lat_p999_ns: 8192,
            report: None,
        }
    }

    #[test]
    fn reports_round_trip() {
        let mt = MultiTenantReport {
            policy: QosPolicyKind::ProportionalShare.name(),
            pool_frames: 1000,
            quantum: 512,
            total_accesses: 8192,
            rounds: 16,
            churn_events_applied: 3,
            admission_rejections: 1,
            guarantee_breach_rounds: 0,
            fleet_lat_p50_ns: 128,
            fleet_lat_p95_ns: 1024,
            fleet_lat_p99_ns: 4096,
            fleet_lat_p999_ns: 16384,
            overcommit_x100: 150,
            achieved_footprint_bytes: 4096 * 900,
            breach_rate_ppm: 1250,
            tenants: vec![
                tenant(),
                TenantReport { departed_at: Some(5000), fault: Some("boom".into()), ..tenant() },
            ],
        };
        let decoded = MultiTenantReport::from_value(&mt.to_value()).expect("round trip");
        assert_eq!(decoded, mt);
    }

    #[test]
    fn unknown_policy_is_rejected() {
        let mut v = MultiTenantReport {
            policy: "proportional-share",
            pool_frames: 1,
            quantum: 1,
            total_accesses: 0,
            rounds: 0,
            churn_events_applied: 0,
            admission_rejections: 0,
            guarantee_breach_rounds: 0,
            fleet_lat_p50_ns: 0,
            fleet_lat_p95_ns: 0,
            fleet_lat_p99_ns: 0,
            fleet_lat_p999_ns: 0,
            overcommit_x100: 0,
            achieved_footprint_bytes: 0,
            breach_rate_ppm: 0,
            tenants: vec![],
        }
        .to_value();
        if let Value::Map(entries) = &mut v {
            for (k, val) in entries.iter_mut() {
                if k == "policy" {
                    *val = Value::Str("mystery".into());
                }
            }
        }
        assert!(MultiTenantReport::from_value(&v).is_err());
    }
}
