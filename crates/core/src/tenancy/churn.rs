//! Deterministic tenant-churn schedules.
//!
//! A [`ChurnPlan`] is to a [`MultiTenantSystem`](super::MultiTenantSystem)
//! what a [`FaultPlan`](crate::config::FaultPlan) is to a single
//! [`System`](crate::System): a seed-independent list of events keyed to
//! the *global measured access count* (summed across every tenant). Two
//! runs with the same configuration and plan are bit-identical, so churn
//! storms journal and replay like any other sweep point.

use crate::config::FaultKind;

/// What happens at a churn event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnKind {
    /// A roster tenant (by index into
    /// [`MultiTenantConfig::roster`](super::MultiTenantConfig::roster))
    /// asks to join. Admission control may reject it; arriving while
    /// already active, or naming an out-of-range slot, is a no-op.
    Arrive {
        /// Roster index of the arriving tenant.
        roster: usize,
    },
    /// A roster tenant departs, releasing its frames to the pool.
    /// Departing while not active is a no-op.
    Depart {
        /// Roster index of the departing tenant.
        roster: usize,
    },
    /// A tenant's demand spikes to `percent` of its configured demand
    /// (100 restores the baseline; 150 asks for half again as much).
    /// Ignored for inactive tenants.
    WorkingSetSpike {
        /// Roster index of the spiking tenant.
        roster: usize,
        /// New demand as a percentage of the configured demand.
        percent: u32,
    },
    /// Injects a runtime fault into one tenant's system (a
    /// [`FaultKind::ContentShift`] models its compressibility
    /// collapsing). Ignored for inactive tenants.
    Fault {
        /// Roster index of the faulted tenant.
        roster: usize,
        /// The fault to inject.
        kind: FaultKind,
    },
    /// Balloon deflation at pool scope: the host reclaims `frames` from
    /// the shared pool. Tenant budgets are rebalanced immediately.
    PoolShrink {
        /// Frames removed from the pool.
        frames: u64,
    },
    /// Balloon inflation at pool scope.
    PoolGrow {
        /// Frames returned to the pool.
        frames: u64,
    },
}

/// One scheduled churn event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Global measured access count at which the event fires — it is
    /// applied at the start of the first scheduling round whose access
    /// count is ≥ this value.
    pub at_access: u64,
    /// What happens.
    pub kind: ChurnKind,
}

/// A deterministic schedule of churn events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnPlan {
    /// The scheduled events, in any order (the system sorts internally;
    /// ties apply in insertion order).
    pub events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// An empty plan (no churn).
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an event (builder style).
    pub fn with(mut self, at_access: u64, kind: ChurnKind) -> Self {
        self.events.push(ChurnEvent { at_access, kind });
        self
    }

    /// Whether the plan schedules anything.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let plan = ChurnPlan::none()
            .with(100, ChurnKind::Arrive { roster: 2 })
            .with(50, ChurnKind::PoolShrink { frames: 64 });
        assert_eq!(plan.events.len(), 2);
        assert_eq!(plan.events[0].at_access, 100);
        assert!(!plan.is_empty());
        assert!(ChurnPlan::none().is_empty());
    }
}
