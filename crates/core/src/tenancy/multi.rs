//! The multi-tenant system: per-tenant simulators over a shared pool.
//!
//! A [`MultiTenantSystem`] shards the simulator into per-tenant address
//! spaces — each admitted tenant owns a full [`System`] (its own page
//! table, TLB, caches, CTE state and DRAM model) — while a
//! [`CapacityArbiter`] divides one shared frame pool among them under a
//! [`QosPolicyKind`] policy. Tenants execute round-robin in fixed-size
//! access quanta; churn (arrivals, departures, spikes, pool ballooning)
//! follows a deterministic [`ChurnPlan`], so a scenario is a pure
//! function of its configuration and replays bit-identically.
//!
//! # The degradation ladder
//!
//! Tenant capacity grants are enforced through balloon faults: when the
//! arbiter rebalances, each tenant's budget shrinks or grows via
//! [`FaultKind::ShrinkBudget`] / [`FaultKind::GrowBudget`] on its own
//! scheme. A tenant whose scheme reports sustained pressure
//! ([`SchemePressure::degraded`](crate::schemes::SchemePressure) for
//! [`ENTER_ROUNDS`] consecutive rounds — typically one whose content
//! turned incompressible) is **quarantined**: its demand is clamped to
//! its guarantee (squeezing it back toward its floor and returning the
//! surplus to neighbours) and its scheduling quantum drops to ¼ (bounded
//! stalls). It recovers after [`EXIT_ROUNDS`] consecutive healthy rounds
//! — the exit threshold exceeds the entry threshold, so the ladder has
//! hysteresis and cannot flap. A tenant whose simulation *fails* outright
//! is evicted with its error recorded; neighbours keep running.
//!
//! # Fleet-scale scheduling
//!
//! Each round runs in three phases so thousand-tenant rosters use the
//! whole machine without giving up byte-reproducibility:
//!
//! 1. **Plan** (serial, slot order): pick each active tenant's quantum,
//!    capped by the remaining measured-access budget — the only
//!    order-dependent part of quantum sizing.
//! 2. **Execute** (parallel): the planned slices dispatch onto the
//!    ambient work-stealing pool. Tenant systems are fully independent
//!    between round barriers (the shared arbiter is never touched here),
//!    so slices race only against the clock, never against each other.
//! 3. **Commit** (serial, slot order): counters, the global access
//!    clock, and failure-eviction all replay in slot order, so results
//!    are byte-identical at any `--jobs` count — the same discipline the
//!    sweep harness uses across points, applied within one point.
//!
//! `TMCC_MT_SERIAL_QUANTA=1` forces phase 2 onto the calling thread
//! (identical results, used to measure the parallel speedup). Arbiter
//! work follows the incremental-ledger design described in
//! [`CapacityArbiter`]: events push O(1) demand deltas, and one batched
//! rebalance per barrier materializes allocations.

use crate::config::{FaultKind, SchemeKind, SystemConfig};
use crate::error::TmccError;
use crate::handle::RunHandle;
use crate::latency::LatencyHistogram;
use crate::stats::RunReport;
use crate::system::System;
use rayon::prelude::*;
use tmcc_workloads::WorkloadProfile;

use super::arbiter::CapacityArbiter;
use super::churn::{ChurnEvent, ChurnKind, ChurnPlan};
use super::qos::{QosPolicyKind, TenantDemand};
use super::report::{MultiTenantReport, TenantReport};

/// `TMCC_MT_SERIAL_QUANTA=1` forces every batch of tenant quanta (and
/// the initial-roster warmups) onto the calling thread — the measured
/// serial baseline for the scale-out speedup, byte-identical to the
/// parallel path by construction.
fn serial_quanta_override() -> bool {
    std::env::var_os("TMCC_MT_SERIAL_QUANTA").is_some_and(|v| v == "1")
}

/// Consecutive degraded rounds before a tenant is quarantined.
pub const ENTER_ROUNDS: u32 = 2;
/// Consecutive healthy rounds before a quarantined tenant is restored.
/// Strictly greater than [`ENTER_ROUNDS`]: the ladder's hysteresis.
pub const EXIT_ROUNDS: u32 = 4;

/// One tenant's static description: who it is, what it runs, and what
/// the QoS contract promises it.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (unique within a roster).
    pub name: String,
    /// The workload the tenant runs.
    pub workload: WorkloadProfile,
    /// The compression scheme of the tenant's memory controller.
    pub scheme: SchemeKind,
    /// Per-tenant seed salt (combined with the scenario seed).
    pub seed: u64,
    /// Relative share weight (≥ 1).
    pub weight: u32,
    /// QoS floor in frames — capacity the tenant keeps regardless of
    /// neighbours (as long as the pool itself can cover all floors).
    pub floor_frames: u32,
    /// Steady-state demand in frames.
    pub demand_frames: u32,
    /// Tenant-local fault plan, scheduled on the tenant's own access
    /// clock (warmup included) — composes with pool-level churn.
    pub fault_plan: crate::config::FaultPlan,
}

impl TenantSpec {
    /// A spec with contract defaults: weight 1, demand sized to hold the
    /// workload uncompressed (footprint + page tables + a small reserve),
    /// floor at half the demand — so a compressing tenant normally lives
    /// between "needs compression to fit" and "fully resident".
    pub fn new(name: &str, workload: WorkloadProfile, scheme: SchemeKind, seed: u64) -> Self {
        let demand = Self::resident_frames(&workload);
        Self {
            name: name.to_string(),
            workload,
            scheme,
            seed,
            weight: 1,
            floor_frames: (demand / 2).max(1),
            demand_frames: demand,
            fault_plan: crate::config::FaultPlan::none(),
        }
    }

    /// Frames that hold the workload fully uncompressed: data pages,
    /// a page-table upper bound, and a small reserve.
    pub fn resident_frames(workload: &WorkloadProfile) -> u32 {
        let pages = workload.sim_pages;
        (pages + pages.div_ceil(512) + 16 + 64).min(u32::MAX as u64) as u32
    }

    /// Sets the share weight (builder style).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the QoS floor (builder style).
    pub fn with_floor(mut self, frames: u32) -> Self {
        self.floor_frames = frames;
        self
    }

    /// Sets the steady-state demand (builder style).
    pub fn with_demand(mut self, frames: u32) -> Self {
        self.demand_frames = frames.max(1);
        self
    }

    /// Sets the tenant-local fault plan (builder style).
    pub fn with_fault_plan(mut self, plan: crate::config::FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }
}

/// Full configuration of one multi-tenant scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTenantConfig {
    /// Shared pool size, 4 KiB frames.
    pub pool_frames: u64,
    /// Fairness policy.
    pub policy: QosPolicyKind,
    /// Every tenant that may ever run, in slot order. Slots beyond
    /// `initial_tenants` join only through [`ChurnKind::Arrive`].
    pub roster: Vec<TenantSpec>,
    /// Roster prefix admitted at construction (clamped to the roster).
    pub initial_tenants: usize,
    /// The churn schedule.
    pub churn: ChurnPlan,
    /// Scheduling quantum, accesses per tenant per round.
    pub quantum: u64,
    /// Warmup accesses each tenant runs at admission, before its
    /// measured window opens.
    pub warmup_accesses: u64,
    /// Scenario seed (combined with each tenant's seed salt).
    pub seed: u64,
    /// Size-model samples per tenant (see
    /// [`SystemConfig::size_samples`]).
    pub size_samples: usize,
    /// Audit arbiter + scheme invariants after every round.
    pub audit: bool,
}

impl MultiTenantConfig {
    /// A scenario over `pool_frames` under `policy`, with an empty
    /// roster and paper-default knobs.
    pub fn new(pool_frames: u64, policy: QosPolicyKind) -> Self {
        Self {
            pool_frames,
            policy,
            roster: Vec::new(),
            initial_tenants: usize::MAX,
            churn: ChurnPlan::none(),
            quantum: 512,
            warmup_accesses: 20_000,
            seed: 0xC0FFEE,
            size_samples: 128,
            audit: false,
        }
    }

    /// Appends a tenant to the roster (builder style).
    pub fn with_tenant(mut self, spec: TenantSpec) -> Self {
        self.roster.push(spec);
        self
    }

    /// Sets how many roster slots are admitted at construction (builder
    /// style). Defaults to the whole roster.
    pub fn with_initial_tenants(mut self, n: usize) -> Self {
        self.initial_tenants = n;
        self
    }

    /// Sets the churn schedule (builder style).
    pub fn with_churn(mut self, churn: ChurnPlan) -> Self {
        self.churn = churn;
        self
    }

    /// Sets the scheduling quantum (builder style).
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    /// Sets the per-tenant warmup (builder style).
    pub fn with_warmup(mut self, accesses: u64) -> Self {
        self.warmup_accesses = accesses;
        self
    }

    /// Sets the scenario seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the size-model sample count (builder style).
    pub fn with_size_samples(mut self, samples: usize) -> Self {
        self.size_samples = samples;
        self
    }

    /// Enables per-round invariant auditing (builder style).
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// The [`SystemConfig`] a tenant runs under, given its current frame
    /// grant.
    fn tenant_config(&self, spec: &TenantSpec, alloc_frames: u32) -> SystemConfig {
        let mut cfg = SystemConfig::new(spec.workload.clone(), spec.scheme)
            .with_seed(self.seed ^ spec.seed.rotate_left(17))
            .with_fault_plan(spec.fault_plan.clone())
            .with_size_samples(self.size_samples);
        cfg.warmup_accesses = self.warmup_accesses;
        if matches!(spec.scheme, SchemeKind::OsInspired | SchemeKind::Tmcc) {
            cfg.dram_budget_bytes = Some(alloc_frames as u64 * 4096);
        }
        if self.audit {
            cfg.audit = true;
        }
        cfg
    }
}

/// Saturating per-tenant counters that outlive the tenant's `System`.
#[derive(Debug, Clone, Copy, Default)]
struct TenantCounters {
    rejections: u64,
    quanta: u64,
    throttled_quanta: u64,
    degraded_entries: u64,
    degraded_exits: u64,
    shrink_events: u64,
    grow_events: u64,
    guarantee_breach_rounds: u64,
    measured_accesses: u64,
    /// Smallest allocation ever held while active; `u32::MAX` until the
    /// first grant.
    min_alloc_frames: u32,
}

/// The live half of an admitted tenant.
struct ActiveTenant {
    sys: Box<System>,
    alloc_frames: u32,
    /// Demand spike as a percentage of the configured demand (100 =
    /// baseline).
    spike_percent: u32,
    quarantined: bool,
    degraded_rounds: u32,
    healthy_rounds: u32,
    /// `stats.degraded_ns` at the previous health check; a round counts
    /// as degraded if any degraded time accrued during it, so transient
    /// pressure spikes inside a quantum are not missed by point sampling.
    last_degraded_ns: f64,
}

/// One roster slot: the spec plus whatever state the tenant accumulated.
struct TenantSlot {
    spec: TenantSpec,
    /// Cached feasibility minimum (frames), computed at first admission
    /// attempt.
    min_frames: Option<u32>,
    active: Option<ActiveTenant>,
    counters: TenantCounters,
    admitted: bool,
    arrived_at: Option<u64>,
    departed_at: Option<u64>,
    fault: Option<String>,
    /// Report sealed at departure/eviction (still-active tenants seal at
    /// the end of the run).
    final_report: Option<RunReport>,
    final_alloc: u32,
    /// Latency histogram sealed alongside `final_report`; feeds the
    /// per-tenant percentiles and the fleet-wide merge.
    final_latency: Option<LatencyHistogram>,
}

impl TenantSlot {
    fn new(spec: TenantSpec) -> Self {
        Self {
            spec,
            min_frames: None,
            active: None,
            counters: TenantCounters { min_alloc_frames: u32::MAX, ..Default::default() },
            admitted: false,
            arrived_at: None,
            departed_at: None,
            fault: None,
            final_report: None,
            final_alloc: 0,
            final_latency: None,
        }
    }

    /// The demand the arbiter should currently see for this tenant.
    fn effective_demand(&self) -> Option<TenantDemand> {
        let t = self.active.as_ref()?;
        let min = self.min_frames.unwrap_or(1);
        let spec = &self.spec;
        let spiked = ((spec.demand_frames as u64 * t.spike_percent as u64) / 100)
            .clamp(1, u32::MAX as u64) as u32;
        let demand = if t.quarantined {
            // Quarantine squeezes the tenant back to its guarantee: the
            // surplus it was holding returns to the neighbours.
            spec.floor_frames.max(min)
        } else {
            spiked
        };
        Some(TenantDemand {
            weight: spec.weight.max(1),
            floor_frames: spec.floor_frames,
            min_frames: min,
            demand_frames: demand,
        })
    }
}

/// A shared compressed pool serving several tenant simulators.
///
/// See the module docs for the model; [`MultiTenantSystem::try_run`] is
/// the entry point.
pub struct MultiTenantSystem {
    cfg: MultiTenantConfig,
    arbiter: CapacityArbiter,
    slots: Vec<TenantSlot>,
    /// Churn events sorted by `at_access` (stable, so ties keep plan
    /// order).
    churn: Vec<ChurnEvent>,
    next_churn: usize,
    /// Measured accesses executed across all tenants — the churn clock.
    global_accesses: u64,
    rounds: u64,
    churn_applied: u64,
    cancel: Option<RunHandle>,
}

impl MultiTenantSystem {
    /// Builds the scenario and admits the initial roster prefix. Tenants
    /// the arbiter turns down at construction are recorded as rejected,
    /// not errors — admission control is part of the model.
    pub fn try_new(cfg: MultiTenantConfig) -> Result<Self, TmccError> {
        Self::try_new_cancellable(cfg, None)
    }

    /// [`MultiTenantSystem::try_new`] with a cancellation token wired in
    /// *before* the initial roster is admitted, so even the admission
    /// warmups respect an external deadline (the bench watchdog).
    pub fn try_new_cancellable(
        cfg: MultiTenantConfig,
        handle: Option<&RunHandle>,
    ) -> Result<Self, TmccError> {
        let mut churn = cfg.churn.events.clone();
        churn.sort_by_key(|e| e.at_access);
        let arbiter = CapacityArbiter::new(cfg.pool_frames, cfg.policy, cfg.roster.len());
        let slots = cfg.roster.iter().cloned().map(TenantSlot::new).collect();
        let mut sys = Self {
            arbiter,
            slots,
            churn,
            next_churn: 0,
            global_accesses: 0,
            rounds: 0,
            churn_applied: 0,
            cancel: handle.cloned(),
            cfg,
        };
        sys.admit_initial_roster()?;
        if sys.cfg.audit {
            sys.validate()?;
        }
        Ok(sys)
    }

    /// The configuration in use.
    pub fn config(&self) -> &MultiTenantConfig {
        &self.cfg
    }

    /// Measured accesses executed so far across all tenants.
    pub fn global_accesses(&self) -> u64 {
        self.global_accesses
    }

    /// Attaches a cancellation token: every current and future tenant
    /// system polls it, and the round loop checks it between rounds.
    pub fn attach_handle(&mut self, handle: &RunHandle) {
        self.cancel = Some(handle.clone());
        for slot in &mut self.slots {
            if let Some(t) = slot.active.as_mut() {
                t.sys.attach_handle(handle);
            }
        }
    }

    /// The feasibility minimum for a slot, cached after first
    /// computation (it samples the tenant's size model).
    fn min_frames(&mut self, slot: usize) -> u32 {
        if let Some(m) = self.slots[slot].min_frames {
            return m;
        }
        let spec = &self.slots[slot].spec;
        let min = match spec.scheme {
            SchemeKind::OsInspired | SchemeKind::Tmcc => {
                let cfg = self.cfg.tenant_config(spec, 0);
                (System::min_budget_bytes(&cfg).div_ceil(4096) + 1).min(u32::MAX as u64) as u32
            }
            // Budget-blind schemes occupy their full footprint no matter
            // what the arbiter grants; the grant must cover it.
            SchemeKind::NoCompression | SchemeKind::Compresso => {
                TenantSpec::resident_frames(&spec.workload)
            }
        };
        self.slots[slot].min_frames = Some(min);
        min
    }

    /// Admission demand for a slot about to (re)join: baseline spike, not
    /// quarantined.
    fn admission_demand(&mut self, slot: usize) -> TenantDemand {
        let min = self.min_frames(slot);
        let spec = &self.slots[slot].spec;
        TenantDemand {
            weight: spec.weight.max(1),
            floor_frames: spec.floor_frames,
            min_frames: min,
            demand_frames: spec.demand_frames.max(1),
        }
    }

    /// Pushes one slot's current effective demand into the arbiter's
    /// ledger — the O(1) per-event path (spikes, quarantine moves).
    fn sync_demand(&mut self, slot: usize) {
        if let Some(d) = self.slots[slot].effective_demand() {
            self.arbiter.set_demand(slot, d);
        }
    }

    /// Admits the initial roster prefix as one batch. Admission checks
    /// and demand-ledger updates run serially in slot order (each
    /// candidate sees its predecessors' guarantees), then a single
    /// rebalance fixes every newcomer's grant, and the — mutually
    /// independent — tenant builds and warmups fan out onto the ambient
    /// work-stealing pool. Commit replays in slot order, so the roster is
    /// byte-identical to the serial fallback at any worker count.
    fn admit_initial_roster(&mut self) -> Result<(), TmccError> {
        let force_serial = serial_quanta_override();
        let initial = self.cfg.initial_tenants.min(self.slots.len());
        let mut admitted: Vec<usize> = Vec::with_capacity(initial);
        for slot in 0..initial {
            let candidate = self.admission_demand(slot);
            if self.arbiter.can_admit(candidate) {
                self.arbiter.set_demand(slot, candidate);
                admitted.push(slot);
            } else {
                self.slots[slot].counters.rejections =
                    self.slots[slot].counters.rejections.saturating_add(1);
            }
        }
        self.arbiter.rebalance();
        let work: Vec<(usize, u32, SystemConfig)> = admitted
            .into_iter()
            .map(|slot| {
                let grant = self.arbiter.allocation(slot).unwrap_or(0);
                (slot, grant, self.cfg.tenant_config(&self.slots[slot].spec, grant))
            })
            .collect();
        let cancel = self.cancel.clone();
        let build = |(slot, grant, cfg): (usize, u32, SystemConfig)| {
            let built = System::try_new(cfg).and_then(|mut sys| {
                if let Some(h) = &cancel {
                    sys.attach_handle(h);
                }
                sys.try_warmup()?;
                Ok(sys)
            });
            (slot, grant, built)
        };
        let built: Vec<(usize, u32, Result<System, TmccError>)> = if force_serial {
            work.into_iter().map(build).collect()
        } else {
            work.into_par_iter().map(build).collect()
        };
        for (slot, grant, result) in built {
            match result {
                Ok(sys) => {
                    let s = &mut self.slots[slot];
                    s.active = Some(ActiveTenant {
                        sys: Box::new(sys),
                        alloc_frames: grant,
                        spike_percent: 100,
                        quarantined: false,
                        degraded_rounds: 0,
                        healthy_rounds: 0,
                        last_degraded_ns: 0.0,
                    });
                    s.admitted = true;
                    s.arrived_at = Some(0);
                    s.counters.min_alloc_frames = s.counters.min_alloc_frames.min(grant);
                }
                Err(e) if e.is_cancelled() => return Err(e),
                Err(_) => {
                    // The grant was infeasible for the tenant's scheme
                    // (or its warmup failed): roll the ledger back and
                    // let the survivors split the freed frames.
                    self.arbiter.clear_demand(slot);
                    self.slots[slot].counters.rejections =
                        self.slots[slot].counters.rejections.saturating_add(1);
                }
            }
        }
        // One settle moves every survivor to its final grant (a no-op
        // when no build failed — the batch rebalance above already
        // granted final allocations).
        self.settle()
    }

    /// Attempts to admit roster slot `slot`. A rejected admission (the
    /// pool cannot cover everyone's guarantees, or the grant turns out
    /// infeasible for the tenant's scheme) counts against the slot and
    /// returns `Ok(false)`. Arriving while active is a no-op. With
    /// `settle_now` the incumbents' balloon deltas apply immediately;
    /// construction batches many admissions under one final settle.
    fn admit(&mut self, slot: usize, settle_now: bool) -> Result<bool, TmccError> {
        if slot >= self.slots.len() || self.slots[slot].active.is_some() {
            return Ok(false);
        }
        let candidate = self.admission_demand(slot);
        // O(1): the arbiter tracks the incumbents' guarantee sum.
        if !self.arbiter.can_admit(candidate) {
            self.slots[slot].counters.rejections =
                self.slots[slot].counters.rejections.saturating_add(1);
            return Ok(false);
        }
        // Ledger the newcomer, materialize the rebalanced allocation
        // (incumbents shrink to make room), then build + warm up the
        // newcomer under its grant.
        self.arbiter.set_demand(slot, candidate);
        self.arbiter.rebalance();
        let grant = self.arbiter.allocation(slot).unwrap_or(0);
        let tenant_cfg = self.cfg.tenant_config(&self.slots[slot].spec, grant);
        let built = System::try_new(tenant_cfg).and_then(|mut sys| {
            if let Some(h) = &self.cancel {
                sys.attach_handle(h);
            }
            sys.try_warmup()?;
            Ok(sys)
        });
        match built {
            Ok(sys) => {
                let s = &mut self.slots[slot];
                s.active = Some(ActiveTenant {
                    sys: Box::new(sys),
                    alloc_frames: grant,
                    spike_percent: 100,
                    quarantined: false,
                    degraded_rounds: 0,
                    healthy_rounds: 0,
                    last_degraded_ns: 0.0,
                });
                s.admitted = true;
                s.arrived_at = Some(self.global_accesses);
                s.departed_at = None;
                s.counters.min_alloc_frames = s.counters.min_alloc_frames.min(grant);
                if settle_now {
                    // Incumbent budgets move to their rebalanced grants.
                    self.settle()?;
                }
                Ok(true)
            }
            Err(e) if e.is_cancelled() => Err(e),
            Err(_) => {
                // The grant was infeasible for the tenant's scheme (or
                // its warmup failed): roll the ledger back. Same demands,
                // same pool — the rebalance restores the incumbents'
                // previous allocations exactly.
                self.arbiter.clear_demand(slot);
                if settle_now {
                    self.settle()?;
                }
                self.slots[slot].counters.rejections =
                    self.slots[slot].counters.rejections.saturating_add(1);
                Ok(false)
            }
        }
    }

    /// Seals and removes an active tenant, releasing its frames back to
    /// the ledger. The caller settles the batch afterwards; until then
    /// the freed frames sit in the pool's unallocated reserve.
    fn retire(&mut self, slot: usize, fault: Option<String>) {
        let s = &mut self.slots[slot];
        if let Some(mut t) = s.active.take() {
            if t.quarantined {
                // Departure ends the quarantine episode; keep the ladder
                // counters balanced for a possible re-admission.
                s.counters.degraded_exits = s.counters.degraded_exits.saturating_add(1);
            }
            s.final_report = Some(t.sys.report());
            s.final_latency = Some(t.sys.latency_histogram().clone());
            s.final_alloc = t.alloc_frames;
            s.departed_at = Some(self.global_accesses);
            if fault.is_some() {
                s.fault = fault;
            }
            self.arbiter.release(slot);
        }
    }

    /// Materializes pending ledger deltas (one batched rebalance) and
    /// pushes the allocations into the tenant systems as balloon faults.
    /// A tenant whose scheme fails while ballooning is evicted (fault
    /// recorded) and the rebalance retried without it.
    fn settle(&mut self) -> Result<(), TmccError> {
        loop {
            self.arbiter.rebalance();
            let mut failed: Option<(usize, TmccError)> = None;
            for i in 0..self.slots.len() {
                let Some(target) = self.arbiter.allocation(i) else { continue };
                let s = &mut self.slots[i];
                let Some(t) = s.active.as_mut() else { continue };
                let old = t.alloc_frames;
                let result = if target < old {
                    s.counters.shrink_events = s.counters.shrink_events.saturating_add(1);
                    t.sys.inject_fault(FaultKind::ShrinkBudget { frames: old - target })
                } else if target > old {
                    s.counters.grow_events = s.counters.grow_events.saturating_add(1);
                    t.sys.inject_fault(FaultKind::GrowBudget { frames: target - old })
                } else {
                    Ok(())
                };
                match result {
                    Ok(()) => {
                        t.alloc_frames = target;
                        s.counters.min_alloc_frames = s.counters.min_alloc_frames.min(target);
                    }
                    Err(e) if e.is_cancelled() => return Err(e),
                    Err(e) => {
                        failed = Some((i, e));
                        break;
                    }
                }
            }
            match failed {
                None => return Ok(()),
                Some((slot, e)) => self.retire(slot, Some(e.to_string())),
            }
        }
    }

    /// Applies every churn event due at the current global access count.
    /// Events ledger their demand deltas in O(1) each; the whole batch is
    /// materialized by a single rebalance + balloon pass at the end.
    fn apply_due_churn(&mut self) -> Result<(), TmccError> {
        let mut batched = false;
        while let Some(ev) = self.churn.get(self.next_churn) {
            if ev.at_access > self.global_accesses {
                break;
            }
            let kind = ev.kind;
            self.next_churn += 1;
            self.churn_applied = self.churn_applied.saturating_add(1);
            match kind {
                ChurnKind::Arrive { roster } => {
                    // Admission settles inline: the newcomer's warmup and
                    // the incumbents' squeeze are one atomic step, and
                    // any same-round follow-up events see the post-
                    // admission ledger.
                    self.admit(roster, true)?;
                }
                ChurnKind::Depart { roster } => {
                    if roster < self.slots.len() && self.slots[roster].active.is_some() {
                        self.retire(roster, None);
                        batched = true;
                    }
                }
                ChurnKind::WorkingSetSpike { roster, percent } => {
                    let spiked = self
                        .slots
                        .get_mut(roster)
                        .and_then(|s| s.active.as_mut())
                        .map(|t| t.spike_percent = percent.max(1))
                        .is_some();
                    if spiked {
                        self.sync_demand(roster);
                        batched = true;
                    }
                }
                ChurnKind::Fault { roster, kind } => {
                    let result = self
                        .slots
                        .get_mut(roster)
                        .and_then(|s| s.active.as_mut())
                        .map(|t| t.sys.inject_fault(kind));
                    match result {
                        None | Some(Ok(())) => {}
                        Some(Err(e)) if e.is_cancelled() => return Err(e),
                        Some(Err(e)) => {
                            self.retire(roster, Some(e.to_string()));
                            batched = true;
                        }
                    }
                }
                ChurnKind::PoolShrink { frames } => {
                    self.arbiter.shrink_pool(frames);
                    batched = true;
                }
                ChurnKind::PoolGrow { frames } => {
                    self.arbiter.grow_pool(frames);
                    batched = true;
                }
            }
        }
        if batched {
            self.settle()?;
        }
        Ok(())
    }

    /// Advances the degradation ladder one round and counts guarantee
    /// breaches.
    fn update_health(&mut self) -> Result<(), TmccError> {
        let mut transitioned = false;
        for i in 0..self.slots.len() {
            let s = &mut self.slots[i];
            let Some(t) = s.active.as_mut() else { continue };
            let pressure = t.sys.scheme_pressure();
            let degraded_ns = t.sys.stats().degraded_ns;
            let degraded_this_round = pressure.degraded || degraded_ns > t.last_degraded_ns;
            t.last_degraded_ns = degraded_ns;
            if degraded_this_round {
                t.degraded_rounds = t.degraded_rounds.saturating_add(1);
                t.healthy_rounds = 0;
            } else {
                t.healthy_rounds = t.healthy_rounds.saturating_add(1);
                t.degraded_rounds = 0;
            }
            let mut moved = false;
            if !t.quarantined && t.degraded_rounds >= ENTER_ROUNDS {
                t.quarantined = true;
                t.degraded_rounds = 0;
                s.counters.degraded_entries = s.counters.degraded_entries.saturating_add(1);
                moved = true;
            } else if t.quarantined && t.healthy_rounds >= EXIT_ROUNDS {
                t.quarantined = false;
                t.healthy_rounds = 0;
                s.counters.degraded_exits = s.counters.degraded_exits.saturating_add(1);
                moved = true;
            }
            let guaranteed = s.spec.floor_frames.max(s.min_frames.unwrap_or(1));
            if t.alloc_frames < guaranteed {
                s.counters.guarantee_breach_rounds =
                    s.counters.guarantee_breach_rounds.saturating_add(1);
            }
            if moved {
                // O(1) ledger delta; all of this round's transitions
                // materialize in one batched rebalance below.
                self.sync_demand(i);
                transitioned = true;
            }
        }
        if transitioned {
            self.settle()?;
        }
        Ok(())
    }

    /// Audits the whole stack: the arbiter ledger, ledger↔tenant
    /// consistency, cross-tenant frame leaks, degradation-ladder
    /// hysteresis, counter saturation, and every tenant scheme's own
    /// invariants.
    pub fn validate(&self) -> Result<(), TmccError> {
        self.arbiter.validate()?;
        for (i, s) in self.slots.iter().enumerate() {
            let Some(t) = s.active.as_ref() else {
                if self.arbiter.allocation(i).is_some() {
                    return Err(TmccError::InvariantViolation {
                        detail: format!("slot {i} inactive but holds an allocation"),
                    });
                }
                continue;
            };
            if self.arbiter.allocation(i) != Some(t.alloc_frames) {
                return Err(TmccError::InvariantViolation {
                    detail: format!(
                        "slot {i} allocation mismatch: ledger {:?}, tenant {}",
                        self.arbiter.allocation(i),
                        t.alloc_frames
                    ),
                });
            }
            if self.arbiter.demand(i) != s.effective_demand() {
                return Err(TmccError::InvariantViolation {
                    detail: format!(
                        "slot {i} demand ledger stale: arbiter {:?}, tenant {:?}",
                        self.arbiter.demand(i),
                        s.effective_demand()
                    ),
                });
            }
            // Frame-leak audit: a two-level tenant may not occupy more
            // DRAM than its grant plus frames a shrink has yet to
            // reclaim (metadata lives inside the grant; see
            // DESIGN.md §7).
            if matches!(s.spec.scheme, SchemeKind::OsInspired | SchemeKind::Tmcc) {
                let pressure = t.sys.scheme_pressure();
                let bound = (t.alloc_frames as u64 + pressure.reclaim_debt_frames) * 4096;
                let used = t.sys.dram_used_bytes();
                if used > bound {
                    return Err(TmccError::InvariantViolation {
                        detail: format!(
                            "tenant {} leaks frames: uses {used} bytes, grant covers {bound}",
                            s.spec.name
                        ),
                    });
                }
            }
            if t.degraded_rounds > 0 && t.healthy_rounds > 0 {
                return Err(TmccError::InvariantViolation {
                    detail: format!("tenant {} hysteresis counters both non-zero", s.spec.name),
                });
            }
            let expected_gap = u64::from(t.quarantined);
            if s.counters.degraded_entries != s.counters.degraded_exits + expected_gap {
                return Err(TmccError::InvariantViolation {
                    detail: format!(
                        "tenant {} ladder out of balance: {} entries, {} exits, quarantined={}",
                        s.spec.name,
                        s.counters.degraded_entries,
                        s.counters.degraded_exits,
                        t.quarantined
                    ),
                });
            }
            t.sys.validate()?;
        }
        Ok(())
    }

    /// Runs the scenario until `total_accesses` measured accesses have
    /// executed across all tenants, then reports. Tenant simulation
    /// failures evict the offender and keep the scenario alive; only
    /// cancellation and (under `audit`) invariant violations abort.
    pub fn try_run(&mut self, total_accesses: u64) -> Result<MultiTenantReport, TmccError> {
        let force_serial = serial_quanta_override();
        // Reused per-round scratch: the quantum plan and its outcomes.
        let mut plan: Vec<(usize, u64, bool)> = Vec::new();
        while self.global_accesses < total_accesses {
            if let Some(h) = &self.cancel {
                if h.is_cancelled() {
                    return Err(TmccError::Cancelled { at_access: self.global_accesses });
                }
            }
            self.rounds = self.rounds.saturating_add(1);
            self.apply_due_churn()?;

            // Plan (serial, slot order): quantum sizing consumes the
            // remaining measured-access budget in roster order, the one
            // order-dependent input to the round.
            plan.clear();
            let mut remaining = total_accesses - self.global_accesses;
            for (i, s) in self.slots.iter().enumerate() {
                if remaining == 0 {
                    break;
                }
                let Some(t) = s.active.as_ref() else { continue };
                let quantum =
                    if t.quarantined { (self.cfg.quantum / 4).max(1) } else { self.cfg.quantum };
                let n = quantum.min(remaining);
                remaining -= n;
                plan.push((i, n, t.quarantined));
            }

            // Execute (parallel): tenant systems are independent between
            // round barriers, so the planned slices fan out onto the
            // ambient work-stealing pool; outcomes come back in plan
            // order. With no ambient pool (or `--jobs 1`, or the serial
            // override) this degenerates to the same loop run inline —
            // byte-identical either way.
            let outcomes: Vec<Result<(), TmccError>> = {
                let mut work: Vec<(&mut System, u64)> = Vec::with_capacity(plan.len());
                let mut planned = plan.iter();
                let mut next = planned.next();
                for (i, s) in self.slots.iter_mut().enumerate() {
                    let Some(&(slot, n, _)) = next else { break };
                    if i == slot {
                        let t = s.active.as_mut().expect("planned slot is active");
                        work.push((&mut *t.sys, n));
                        next = planned.next();
                    }
                }
                if force_serial {
                    work.into_iter().map(|(sys, n)| sys.try_run_slice(n)).collect()
                } else {
                    work.into_par_iter().map(|(sys, n)| sys.try_run_slice(n)).collect()
                }
            };

            // Commit (serial, slot order): counters, the global clock and
            // failure evictions replay deterministically.
            let mut ran = 0u64;
            let mut retired = false;
            for (&(i, n, quarantined), result) in plan.iter().zip(outcomes) {
                match result {
                    Ok(()) => {
                        let s = &mut self.slots[i];
                        s.counters.quanta = s.counters.quanta.saturating_add(1);
                        if quarantined {
                            s.counters.throttled_quanta =
                                s.counters.throttled_quanta.saturating_add(1);
                        }
                        s.counters.measured_accesses =
                            s.counters.measured_accesses.saturating_add(n);
                        self.global_accesses += n;
                        ran += n;
                    }
                    Err(e) if e.is_cancelled() => return Err(e),
                    Err(e) => {
                        self.retire(i, Some(e.to_string()));
                        retired = true;
                    }
                }
            }
            if retired {
                self.settle()?;
            }
            self.update_health()?;
            if self.cfg.audit {
                self.validate()?;
            }
            if ran == 0 {
                // Nothing is running: fast-forward the churn clock to the
                // next event, or end the scenario.
                match self.churn.get(self.next_churn) {
                    Some(ev) => {
                        self.global_accesses = self.global_accesses.max(ev.at_access);
                    }
                    None => break,
                }
            }
        }
        // Seal still-active tenants without departing them (the scenario
        // simply ended).
        for s in &mut self.slots {
            if let Some(t) = s.active.as_mut() {
                s.final_report = Some(t.sys.report());
                s.final_latency = Some(t.sys.latency_histogram().clone());
                s.final_alloc = t.alloc_frames;
            }
        }
        self.validate()?;
        Ok(self.build_report(total_accesses))
    }

    fn build_report(&self, total_accesses: u64) -> MultiTenantReport {
        // Fleet-wide tail latency: merge every tenant's fixed-bin
        // histogram (element-wise addition — order-independent, so the
        // percentiles are byte-stable at any --jobs count).
        let mut fleet = LatencyHistogram::new();
        for s in &self.slots {
            if let Some(h) = &s.final_latency {
                fleet.merge(h);
            }
        }
        let tenants = self
            .slots
            .iter()
            .map(|s| {
                let lat = s.final_latency.as_ref();
                TenantReport {
                    name: s.spec.name.clone(),
                    admitted: s.admitted,
                    rejections: s.counters.rejections,
                    arrived_at: s.arrived_at,
                    departed_at: s.departed_at,
                    fault: s.fault.clone(),
                    weight: s.spec.weight,
                    floor_frames: s.spec.floor_frames,
                    demand_frames: s.spec.demand_frames,
                    alloc_frames: s.active.as_ref().map_or(0, |t| t.alloc_frames),
                    min_alloc_frames: if s.counters.min_alloc_frames == u32::MAX {
                        0
                    } else {
                        s.counters.min_alloc_frames
                    },
                    quanta: s.counters.quanta,
                    throttled_quanta: s.counters.throttled_quanta,
                    degraded_entries: s.counters.degraded_entries,
                    degraded_exits: s.counters.degraded_exits,
                    shrink_events: s.counters.shrink_events,
                    grow_events: s.counters.grow_events,
                    guarantee_breach_rounds: s.counters.guarantee_breach_rounds,
                    flips_injected: s.final_report.as_ref().map_or(0, |r| r.stats.flips_injected),
                    corruptions_detected: s
                        .final_report
                        .as_ref()
                        .map_or(0, |r| r.stats.corruptions_detected),
                    corruptions_corrected: s
                        .final_report
                        .as_ref()
                        .map_or(0, |r| r.stats.corruptions_corrected),
                    corruptions_uncorrectable: s
                        .final_report
                        .as_ref()
                        .map_or(0, |r| r.stats.corruptions_uncorrectable),
                    sdc_escapes: s.final_report.as_ref().map_or(0, |r| r.stats.sdc_escapes),
                    frames_poisoned: s.final_report.as_ref().map_or(0, |r| r.stats.frames_poisoned),
                    measured_accesses: s.counters.measured_accesses,
                    lat_p50_ns: lat.map_or(0, |h| h.percentile_ns(500)),
                    lat_p95_ns: lat.map_or(0, |h| h.percentile_ns(950)),
                    lat_p99_ns: lat.map_or(0, |h| h.percentile_ns(990)),
                    lat_p999_ns: lat.map_or(0, |h| h.percentile_ns(999)),
                    report: s.final_report.clone(),
                }
            })
            .collect();
        // Capacity-overcommit frontier coordinates: how far the roster's
        // steady demand oversubscribes the configured pool, the footprint
        // the fleet actually achieved, and how often guarantees broke.
        let demand_total: u64 = self.cfg.roster.iter().map(|s| s.demand_frames as u64).sum();
        let overcommit_x100 = (demand_total * 100).checked_div(self.cfg.pool_frames).unwrap_or(0);
        let achieved_footprint_bytes: u64 = self
            .slots
            .iter()
            .filter_map(|s| s.active.as_ref())
            .map(|t| t.sys.dram_used_bytes())
            .sum();
        let tenant_breach_rounds: u64 =
            self.slots.iter().map(|s| s.counters.guarantee_breach_rounds).sum();
        let tenant_rounds = self.rounds.saturating_mul(self.slots.len() as u64);
        let breach_rate_ppm = if tenant_rounds == 0 {
            0
        } else {
            ((tenant_breach_rounds as u128 * 1_000_000) / tenant_rounds as u128) as u64
        };
        MultiTenantReport {
            policy: self.cfg.policy.name(),
            pool_frames: self.arbiter.pool_frames(),
            quantum: self.cfg.quantum,
            total_accesses,
            rounds: self.rounds,
            churn_events_applied: self.churn_applied,
            admission_rejections: self.slots.iter().map(|s| s.counters.rejections).sum(),
            guarantee_breach_rounds: self.arbiter.guarantee_breach_rounds(),
            fleet_lat_p50_ns: fleet.percentile_ns(500),
            fleet_lat_p95_ns: fleet.percentile_ns(950),
            fleet_lat_p99_ns: fleet.percentile_ns(990),
            fleet_lat_p999_ns: fleet.percentile_ns(999),
            overcommit_x100,
            achieved_footprint_bytes,
            breach_rate_ppm,
            tenants,
        }
    }
}
