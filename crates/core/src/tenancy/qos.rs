//! Fairness/QoS policies for the shared capacity pool.
//!
//! A [`QosPolicy`] splits the pool's frames among the active tenants each
//! time membership, demand, or the pool itself changes. All three built-in
//! policies are pure integer functions of their inputs — same demands in,
//! same allocation out — which keeps multi-tenant runs bit-reproducible.
//!
//! Every policy honours the same two-layer contract:
//!
//! 1. **Guarantees first.** Each tenant's *guarantee* is
//!    `max(floor_frames, min_frames)` — the configured QoS floor or the
//!    scheme's feasibility minimum, whichever is larger. When the pool
//!    covers the sum of guarantees, every tenant receives at least its
//!    guarantee. When it does not (a pool-shrink storm), guarantees are
//!    scaled proportionally and the arbiter records the breach.
//! 2. **Surplus per policy.** Frames beyond the guarantees are
//!    distributed according to the policy: by weight regardless of demand
//!    (strict partition), by weight capped at demand with waterfilled
//!    redistribution (proportional share), or first-come in roster order
//!    (best effort with floors).

use serde::Serialize;

/// One active tenant's capacity requirements, as seen by the arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantDemand {
    /// Relative share weight (≥ 1).
    pub weight: u32,
    /// Configured QoS floor in frames — the capacity the tenant was
    /// promised regardless of neighbours.
    pub floor_frames: u32,
    /// Feasibility minimum in frames — below this the tenant's scheme
    /// cannot hold the working set even fully compressed.
    pub min_frames: u32,
    /// Frames the tenant currently wants (demand spikes move this).
    pub demand_frames: u32,
}

impl TenantDemand {
    /// The frames this tenant must receive for its QoS contract to hold.
    pub fn guaranteed(&self) -> u32 {
        self.floor_frames.max(self.min_frames)
    }
}

/// Reusable working memory for [`QosPolicy::allocate_into`]. Owning it in
/// the caller (the arbiter) makes steady-state rebalances allocation-free.
#[derive(Debug, Default)]
pub struct AllocScratch {
    /// Per-tenant surplus caps (`u32::MAX` for "uncapped").
    caps: Vec<u32>,
    /// Still-hungry tenant indices, rebuilt per waterfilling round.
    hungry: Vec<usize>,
}

/// A capacity-partitioning policy.
pub trait QosPolicy {
    /// Display name used in experiment output.
    fn name(&self) -> &'static str;

    /// Splits `pool` frames among `tenants` into `alloc` (cleared and
    /// refilled; one entry per tenant). The result sums to ≤ `pool` and
    /// gives every tenant at least its guarantee whenever the pool covers
    /// the sum of guarantees. `scratch` is working memory only — no
    /// observable state crosses calls.
    fn allocate_into(
        &self,
        pool: u64,
        tenants: &[TenantDemand],
        alloc: &mut Vec<u32>,
        scratch: &mut AllocScratch,
    );

    /// Convenience wrapper over [`QosPolicy::allocate_into`] that
    /// allocates fresh buffers. Tests and one-shot callers only; the hot
    /// path goes through the arbiter's owned scratch.
    fn allocate(&self, pool: u64, tenants: &[TenantDemand]) -> Vec<u32> {
        let mut alloc = Vec::new();
        let mut scratch = AllocScratch::default();
        self.allocate_into(pool, tenants, &mut alloc, &mut scratch);
        alloc
    }
}

/// Lays the guarantee base layer into `alloc` (cleared first): each
/// tenant's guarantee, scaled down proportionally when the pool cannot
/// cover the sum. Returns the surplus left for the policy layer.
fn guarantee_base(pool: u64, tenants: &[TenantDemand], alloc: &mut Vec<u32>) -> u64 {
    alloc.clear();
    let total: u64 = tenants.iter().map(|t| t.guaranteed() as u64).sum();
    if total <= pool {
        alloc.extend(tenants.iter().map(TenantDemand::guaranteed));
        pool - total
    } else {
        // Breach mode: scale guarantees to fit. Flooring keeps the sum
        // ≤ pool; the dropped remainder frames stay unallocated (the
        // next rebalance after a pool-grow hands them back).
        alloc.extend(
            tenants
                .iter()
                .map(|t| ((t.guaranteed() as u64 * pool) / total).min(u32::MAX as u64) as u32),
        );
        0
    }
}

/// Distributes `surplus` frames over `tenants` by weight, with per-tenant
/// caps (`u32::MAX` for "uncapped"). Waterfills: leftover from capped
/// tenants is re-offered to the still-hungry by weight, and any final
/// sliver smaller than one round goes to the lowest roster indices, so
/// the result is deterministic and leaves frames on the table only when
/// every cap is met.
fn distribute_weighted(
    alloc: &mut [u32],
    tenants: &[TenantDemand],
    mut surplus: u64,
    caps: &[u32],
    hungry: &mut Vec<usize>,
) {
    loop {
        hungry.clear();
        hungry.extend((0..alloc.len()).filter(|&i| alloc[i] < caps[i]));
        if hungry.is_empty() || surplus == 0 {
            return;
        }
        let weight_sum: u64 = hungry.iter().map(|&i| tenants[i].weight.max(1) as u64).sum();
        if surplus < weight_sum {
            // Too few frames for a weighted round: hand them out one at a
            // time in roster order.
            for &i in hungry.iter() {
                if surplus == 0 {
                    return;
                }
                alloc[i] += 1;
                surplus -= 1;
            }
            continue;
        }
        let mut granted = 0u64;
        for &i in hungry.iter() {
            let share = surplus * tenants[i].weight.max(1) as u64 / weight_sum;
            let room = (caps[i] - alloc[i]) as u64;
            let take = share.min(room);
            alloc[i] += take as u32;
            granted += take;
        }
        if granted == 0 {
            return;
        }
        surplus -= granted;
    }
}

/// Strict partitioning: the surplus is split by weight alone, ignoring
/// demand. Unused capacity inside a partition is *not* lent out — maximal
/// isolation, minimal utilization.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrictPartition;

impl QosPolicy for StrictPartition {
    fn name(&self) -> &'static str {
        "strict-partition"
    }

    fn allocate_into(
        &self,
        pool: u64,
        tenants: &[TenantDemand],
        alloc: &mut Vec<u32>,
        scratch: &mut AllocScratch,
    ) {
        let surplus = guarantee_base(pool, tenants, alloc);
        scratch.caps.clear();
        scratch.caps.resize(tenants.len(), u32::MAX);
        distribute_weighted(alloc, tenants, surplus, &scratch.caps, &mut scratch.hungry);
    }
}

/// Proportional sharing: the surplus is split by weight but capped at
/// each tenant's demand; capacity a satisfied tenant leaves behind is
/// waterfilled to the still-hungry.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProportionalShare;

impl QosPolicy for ProportionalShare {
    fn name(&self) -> &'static str {
        "proportional-share"
    }

    fn allocate_into(
        &self,
        pool: u64,
        tenants: &[TenantDemand],
        alloc: &mut Vec<u32>,
        scratch: &mut AllocScratch,
    ) {
        let surplus = guarantee_base(pool, tenants, alloc);
        scratch.caps.clear();
        scratch.caps.extend(tenants.iter().zip(alloc.iter()).map(|(t, &a)| t.demand_frames.max(a)));
        distribute_weighted(alloc, tenants, surplus, &scratch.caps, &mut scratch.hungry);
    }
}

/// Best effort with floors: guarantees are honoured, then the surplus
/// fills demands greedily in roster order — early tenants feast, late
/// tenants get whatever is left above their floor.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestEffortFloors;

impl QosPolicy for BestEffortFloors {
    fn name(&self) -> &'static str {
        "best-effort-floors"
    }

    fn allocate_into(
        &self,
        pool: u64,
        tenants: &[TenantDemand],
        alloc: &mut Vec<u32>,
        _scratch: &mut AllocScratch,
    ) {
        let mut surplus = guarantee_base(pool, tenants, alloc);
        for (i, t) in tenants.iter().enumerate() {
            let room = t.demand_frames.saturating_sub(alloc[i]) as u64;
            let take = room.min(surplus);
            alloc[i] += take as u32;
            surplus -= take;
        }
    }
}

/// Selector for the built-in policies — the configuration-friendly
/// (`Copy`, `Debug`, serializable) face of [`QosPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum QosPolicyKind {
    /// [`StrictPartition`].
    StrictPartition,
    /// [`ProportionalShare`].
    ProportionalShare,
    /// [`BestEffortFloors`].
    BestEffortFloors,
}

impl QosPolicyKind {
    /// The policy implementation.
    pub fn policy(self) -> &'static dyn QosPolicy {
        match self {
            QosPolicyKind::StrictPartition => &StrictPartition,
            QosPolicyKind::ProportionalShare => &ProportionalShare,
            QosPolicyKind::BestEffortFloors => &BestEffortFloors,
        }
    }

    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        self.policy().name()
    }

    /// Inverse of [`QosPolicyKind::name`]. Used by the sweep journal's
    /// report decoder.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "strict-partition" => Some(QosPolicyKind::StrictPartition),
            "proportional-share" => Some(QosPolicyKind::ProportionalShare),
            "best-effort-floors" => Some(QosPolicyKind::BestEffortFloors),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(weight: u32, floor: u32, min: u32, demand: u32) -> TenantDemand {
        TenantDemand { weight, floor_frames: floor, min_frames: min, demand_frames: demand }
    }

    fn sum(v: &[u32]) -> u64 {
        v.iter().map(|&x| x as u64).sum()
    }

    #[test]
    fn guarantees_hold_when_feasible() {
        let tenants = [d(1, 100, 80, 300), d(2, 50, 120, 200), d(1, 200, 10, 250)];
        for kind in [
            QosPolicyKind::StrictPartition,
            QosPolicyKind::ProportionalShare,
            QosPolicyKind::BestEffortFloors,
        ] {
            let alloc = kind.policy().allocate(600, &tenants);
            assert!(sum(&alloc) <= 600, "{}: oversubscribed", kind.name());
            for (a, t) in alloc.iter().zip(&tenants) {
                assert!(*a >= t.guaranteed(), "{}: guarantee broken", kind.name());
            }
        }
    }

    #[test]
    fn proportional_respects_demand_caps_and_waterfills() {
        let tenants = [d(1, 10, 10, 20), d(1, 10, 10, 1000)];
        let alloc = ProportionalShare.allocate(400, &tenants);
        // Tenant 0 is capped at its demand; the rest flows to tenant 1.
        assert_eq!(alloc[0], 20);
        assert_eq!(alloc[1], 380);
    }

    #[test]
    fn strict_partition_ignores_demand() {
        let tenants = [d(1, 10, 10, 20), d(1, 10, 10, 1000)];
        let alloc = StrictPartition.allocate(400, &tenants);
        // Equal weights split the surplus evenly even though tenant 0
        // only wants 20 frames.
        assert_eq!(alloc[0], alloc[1]);
    }

    #[test]
    fn best_effort_feasts_in_roster_order() {
        let tenants = [d(1, 10, 10, 300), d(1, 10, 10, 300)];
        let alloc = BestEffortFloors.allocate(320, &tenants);
        assert_eq!(alloc[0], 300);
        assert_eq!(alloc[1], 20);
    }

    #[test]
    fn infeasible_pool_scales_guarantees() {
        let tenants = [d(1, 100, 100, 100), d(1, 300, 300, 300)];
        for kind in [
            QosPolicyKind::StrictPartition,
            QosPolicyKind::ProportionalShare,
            QosPolicyKind::BestEffortFloors,
        ] {
            let alloc = kind.policy().allocate(200, &tenants);
            assert!(sum(&alloc) <= 200, "{}: oversubscribed", kind.name());
            // Scaling is proportional: the 3:1 ratio survives.
            assert_eq!(alloc[0], 50, "{}", kind.name());
            assert_eq!(alloc[1], 150, "{}", kind.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in [
            QosPolicyKind::StrictPartition,
            QosPolicyKind::ProportionalShare,
            QosPolicyKind::BestEffortFloors,
        ] {
            assert_eq!(QosPolicyKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(QosPolicyKind::from_name("nope"), None);
    }
}
