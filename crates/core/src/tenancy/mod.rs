//! Multi-tenant sharing of one compressed memory pool.
//!
//! The single-system model ([`crate::System`]) simulates one address
//! space; production means many tenants hammering one shared ML1/ML2
//! pool. This module shards the simulator per tenant and arbitrates the
//! shared capacity between them:
//!
//! * [`MultiTenantSystem`] — per-tenant [`System`](crate::System)s (own
//!   page table, TLB, CTE state) scheduled round-robin in access quanta;
//! * [`CapacityArbiter`] — the frame ledger, with admission control and
//!   capacity ballooning;
//! * [`QosPolicy`] + [`QosPolicyKind`] — strict partitioning,
//!   proportional share, and best-effort-with-floors fairness;
//! * [`ChurnPlan`] — deterministic arrivals, departures, demand spikes,
//!   per-tenant faults and pool ballooning, mirroring
//!   [`FaultPlan`](crate::config::FaultPlan);
//! * [`MultiTenantReport`] — per-tenant outcome counters and a nested
//!   [`RunReport`](crate::RunReport) each, journal-round-trippable.
//!
//! Degradation is graceful and contained: see the [`multi`] module docs
//! for the quarantine ladder, and [`MultiTenantSystem::validate`] for
//! the arbiter-level invariants (budgets sum ≤ pool, no cross-tenant
//! frame leaks, ladder hysteresis).

pub mod arbiter;
pub mod churn;
pub mod multi;
pub mod qos;
pub mod report;

pub use arbiter::CapacityArbiter;
pub use churn::{ChurnEvent, ChurnKind, ChurnPlan};
pub use multi::{MultiTenantConfig, MultiTenantSystem, TenantSpec, ENTER_ROUNDS, EXIT_ROUNDS};
pub use qos::{
    BestEffortFloors, ProportionalShare, QosPolicy, QosPolicyKind, StrictPartition, TenantDemand,
};
pub use report::{MultiTenantReport, TenantReport};
