//! Hardware free lists (paper §II, §IV-B, Fig. 3).
//!
//! Three flavours:
//!
//! * [`CompressoFreeList`] — the prior-work list of free 512 B chunks
//!   (Fig. 3a); pointers live "for free" inside free chunks, so the list
//!   costs no DRAM.
//! * [`Ml1FreeList`] — the same structure scaled to 4 KiB chunks for ML1
//!   (Fig. 3b).
//! * [`Ml2FreeLists`] — one list per sub-chunk size class (Fig. 3c). Free
//!   space for ML2 is created by carving *super-chunks* (groups of `M`
//!   interlinked 4 KiB chunks) into `N` equal sub-chunks, choosing `N, M`
//!   to minimize `(4KB · M) mod N` waste; when every sub-chunk of a
//!   super-chunk frees up, its chunks return to ML1 (the "ML2 gracefully
//!   shrinks" behaviour of §IV-A).
//!
//! # Representation
//!
//! Both list flavours are succinct so metadata stays kilobytes at
//! datacenter-scale footprints while popping/pushing in *exactly* the
//! order the original `Vec`/`VecDeque` representations did (frame order
//! determines DRAM addresses and therefore bank timing, so the pop
//! sequence is part of the determinism contract):
//!
//! * [`ChunkFreeList`] splits its free set into a *fresh watermark* — the
//!   never-yet-popped run `[fresh_next, fresh_end)`, which costs zero
//!   bytes — and a LIFO *spill* of explicitly returned chunks, shadowed
//!   by a [`BitVec`] free-map that makes the double-free audit O(1)
//!   instead of an O(n) scan.
//! * Each [`Ml2FreeLists`] super-chunk threads its free slots through an
//!   inline singly-linked list (`free_head` + one `u8` next-pointer per
//!   slot, exactly `N` bytes, `N ≤ 128`) with a `u128` occupancy mask for
//!   O(1) double-free detection. Head insertion/removal reproduces the
//!   old `VecDeque` `push_front`/`pop_front` byte for byte, and the
//!   fixed-size table cannot retain drained capacity across
//!   `PoolShrink`/`PoolGrow` churn the way a `VecDeque` did.
//!
//! All three enforce the conservation invariant — a chunk is never in two
//! places at once — which the property tests exercise.

use crate::error::TmccError;
use tmcc_types::bitvec::BitVec;

/// A simple LIFO free list of uniform chunks, used for Compresso's 512 B
/// chunks and ML1's 4 KiB chunks.
///
/// Chunks are identified by index (chunk number within the managed
/// region). Push/pop at the top mirrors the paper's "push to / pop from
/// the top of the Free List".
#[derive(Debug, Clone, Default)]
pub struct ChunkFreeList {
    /// First never-popped chunk of the fresh run.
    fresh_next: u32,
    /// One past the last chunk of the fresh run.
    fresh_end: u32,
    /// Explicitly returned chunks, popped LIFO before the fresh run.
    spill: Vec<u32>,
    /// Free-map over the spill (bit set = chunk is in `spill`); the fresh
    /// run is implicit in the watermark, so an all-fresh list costs no
    /// bitmap bits at all.
    spill_map: BitVec,
}

impl ChunkFreeList {
    /// Creates a list owning chunks `0..chunks`.
    pub fn with_chunks(chunks: u32) -> Self {
        Self { fresh_next: 0, fresh_end: chunks, spill: Vec::new(), spill_map: BitVec::new() }
    }

    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a free chunk from the top, if any: the most recently pushed
    /// chunk first, then the fresh run in ascending order.
    pub fn pop(&mut self) -> Option<u32> {
        if let Some(c) = self.spill.pop() {
            self.spill_map.clear(c as usize);
            Some(c)
        } else if self.fresh_next < self.fresh_end {
            let c = self.fresh_next;
            self.fresh_next += 1;
            Some(c)
        } else {
            None
        }
    }

    /// Returns a chunk to the top.
    pub fn push(&mut self, chunk: u32) {
        debug_assert!(!self.is_free(chunk), "chunk {chunk} double-freed");
        self.spill_map.grow(chunk as usize + 1);
        self.spill_map.set(chunk as usize);
        self.spill.push(chunk);
    }

    /// Whether `chunk` is currently free (in the fresh run or the spill).
    pub fn is_free(&self, chunk: u32) -> bool {
        (self.fresh_next..self.fresh_end).contains(&chunk)
            || ((chunk as usize) < self.spill_map.len() && self.spill_map.get(chunk as usize))
    }

    /// Number of free chunks.
    pub fn len(&self) -> usize {
        (self.fresh_end - self.fresh_next) as usize + self.spill.len()
    }

    /// Whether no chunks are free.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes owned by the list (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        self.spill.capacity() * std::mem::size_of::<u32>() + self.spill_map.heap_bytes()
    }

    /// Drops excess capacity left behind by a drain (pool-shrink hygiene:
    /// a drained list should not pin its peak-size allocation).
    pub fn shrink_to_fit(&mut self) {
        self.spill.shrink_to_fit();
        self.spill_map.shrink_to_fit();
    }
}

/// Compresso's 512 B-chunk free list (Fig. 3a).
pub type CompressoFreeList = ChunkFreeList;

/// ML1's 4 KiB-chunk free list (Fig. 3b).
pub type Ml1FreeList = ChunkFreeList;

/// Sentinel for "no next slot" in a super-chunk's inline free list
/// (slots are `< 128`, so `0xFF` is never a valid slot).
const SLOT_NIL: u8 = u8::MAX;

/// A super-chunk: `M` 4 KiB chunks carved into `N` sub-chunks of one size
/// class (Fig. 3c). `M ≤ 8` and the smallest class is 256 B, so `N ≤ 128`
/// and the free-slot list fits a fixed `N`-byte next-pointer table plus a
/// `u128` occupancy mask.
#[derive(Debug, Clone)]
struct SuperChunk {
    /// The 4 KiB chunk numbers backing this super-chunk (first `m` used).
    chunks: [u32; 8],
    /// Chunks backing this super-chunk.
    m: u8,
    /// Total sub-chunk slots.
    n: u8,
    /// Head of the free-slot list ([`SLOT_NIL`] when full).
    free_head: u8,
    /// `next[s]` = slot after `s` in the free list; exactly `n` bytes.
    next: Box<[u8]>,
    /// Bit set = slot currently allocated (O(1) double-free detection).
    allocated: u128,
}

impl SuperChunk {
    /// A fresh super-chunk with all `n` slots free, popping `0, 1, …` in
    /// ascending order like the original `(0..n).collect::<VecDeque<_>>()`.
    fn carve(chunks: [u32; 8], m: u8, n: u8) -> Self {
        let mut next = vec![SLOT_NIL; n as usize].into_boxed_slice();
        for s in 0..n.saturating_sub(1) {
            next[s as usize] = s + 1;
        }
        Self { chunks, m, n, free_head: 0, next, allocated: 0 }
    }

    /// Pops the head free slot (the old `free_slots.pop_front()`).
    fn pop_slot(&mut self) -> Option<u8> {
        if self.free_head == SLOT_NIL {
            return None;
        }
        let s = self.free_head;
        self.free_head = self.next[s as usize];
        self.allocated |= 1u128 << s;
        Some(s)
    }

    /// Pushes a freed slot at the head (the old `push_front`), so it is
    /// reused before older free slots.
    fn push_slot(&mut self, s: u8) {
        self.next[s as usize] = self.free_head;
        self.free_head = s;
        self.allocated &= !(1u128 << s);
    }

    /// Number of free slots.
    fn free_count(&self) -> usize {
        self.n as usize - self.allocated.count_ones() as usize
    }

    /// Heap bytes owned by this super-chunk.
    fn heap_bytes(&self) -> usize {
        self.next.len()
    }
}

/// Identifier of an allocated ML2 sub-chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubChunk {
    /// Size class index within [`Ml2FreeLists`].
    pub class: usize,
    /// Super-chunk id.
    pub super_id: u32,
    /// Slot within the super-chunk.
    pub slot: u8,
}

/// The set of ML2 free lists, one per sub-chunk size class.
///
/// # Examples
///
/// ```
/// use tmcc::free_list::{Ml1FreeList, Ml2FreeLists};
///
/// let mut ml1 = Ml1FreeList::with_chunks(1000);
/// let mut ml2 = Ml2FreeLists::paper_classes();
/// // Store a 1300-byte compressed page: needs the 1536-byte class.
/// let sc = ml2.allocate(1300, &mut ml1).expect("space available");
/// assert_eq!(ml2.class_size(sc.class), 1536);
/// ml2.free(sc, &mut ml1);
/// assert_eq!(ml1.len(), 1000, "all chunks returned");
/// ```
#[derive(Debug, Clone)]
pub struct Ml2FreeLists {
    /// Sub-chunk sizes per class, ascending.
    class_sizes: Vec<usize>,
    /// Per class: `(M chunks, N sub-chunks)` chosen to minimize waste.
    geometry: Vec<(usize, usize)>,
    /// Per class: super-chunks with at least one free slot (ids).
    avail: Vec<Vec<u32>>,
    /// All super-chunks, indexed directly by id (`None` = dissolved). A
    /// slab instead of a hash map: every allocate/free/addr_of on the
    /// simulator's hot path resolves a super-chunk id, and an indexed
    /// `Vec` makes that a bounds-checked load instead of a hash lookup.
    supers: Vec<Option<SuperChunk>>,
    /// Ids of dissolved super-chunks awaiting reuse, so churn does not
    /// grow `supers` without bound.
    free_super_ids: Vec<u32>,
    /// Bytes of live sub-chunk allocations (for usage accounting).
    allocated_bytes: usize,
    /// 4 KiB chunks currently owned by ML2.
    owned_chunks: usize,
}

impl Ml2FreeLists {
    /// The size classes used throughout the reproduction: enough classes
    /// that a compressed page wastes little (the paper: "many free lists,
    /// each tracking sub-physical pages of a different size").
    pub fn paper_classes() -> Self {
        Self::new(vec![256, 512, 768, 1024, 1280, 1536, 1792, 2048, 2560, 3072, 4096])
    }

    /// Creates lists for the given ascending size classes.
    ///
    /// # Panics
    ///
    /// Panics if `class_sizes` is empty, unsorted, or contains a class
    /// larger than 4 KiB or smaller than 256 B (the super-chunk slot
    /// table packs slot ids into 7 bits).
    pub fn new(class_sizes: Vec<usize>) -> Self {
        assert!(!class_sizes.is_empty(), "need at least one class");
        assert!(class_sizes.windows(2).all(|w| w[0] < w[1]), "classes must be ascending");
        assert!(
            *class_sizes.last().expect("non-empty") <= 4096,
            "sub-chunks cannot exceed a 4 KiB chunk"
        );
        assert!(
            *class_sizes.first().expect("non-empty") >= 256,
            "sub-chunks below 256 B would overflow the 128-slot super-chunk table"
        );
        let geometry = class_sizes.iter().map(|&s| Self::best_geometry(s)).collect();
        let len = class_sizes.len();
        Self {
            class_sizes,
            geometry,
            avail: vec![Vec::new(); len],
            supers: Vec::new(),
            free_super_ids: Vec::new(),
            allocated_bytes: 0,
            owned_chunks: 0,
        }
    }

    /// Chooses `(M, N)` with `N·size ≤ M·4096`, `M ≤ 8`, minimizing waste
    /// `(M·4096) mod (N·size)` relative to the super-chunk (paper §IV-B:
    /// "N, M are chosen to minimize (4KB · M) mod N").
    fn best_geometry(size: usize) -> (usize, usize) {
        let mut best = (1usize, 4096 / size.max(1));
        let mut best_waste = 4096 % (best.1 * size).max(1);
        for m in 1..=8usize {
            let n = (m * 4096) / size;
            if n == 0 {
                continue;
            }
            let waste = (m * 4096) - n * size;
            // Prefer lower waste per chunk; tie-break on smaller M.
            if (waste as f64 / m as f64) < (best_waste as f64 / best.0 as f64) {
                best = (m, n);
                best_waste = waste;
            }
        }
        (best.0, best.1)
    }

    /// Number of size classes.
    pub fn classes(&self) -> usize {
        self.class_sizes.len()
    }

    /// Sub-chunk size of a class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn class_size(&self, class: usize) -> usize {
        self.class_sizes[class]
    }

    /// The smallest class that fits `bytes`, if any.
    pub fn class_for(&self, bytes: usize) -> Option<usize> {
        self.class_sizes.iter().position(|&s| s >= bytes)
    }

    /// Allocates a sub-chunk for a `bytes`-long compressed page, carving a
    /// new super-chunk from `ml1`'s free chunks when the class is empty.
    /// Returns `None` when `bytes` exceeds the largest class or ML1 has no
    /// chunks to donate (see [`try_allocate`](Self::try_allocate) for the
    /// typed distinction between the two).
    pub fn allocate(&mut self, bytes: usize, ml1: &mut Ml1FreeList) -> Option<SubChunk> {
        self.try_allocate(bytes, ml1).ok()
    }

    /// Allocates a sub-chunk for a `bytes`-long compressed page, reporting
    /// *why* an allocation cannot be satisfied:
    /// [`TmccError::OversizedAllocation`] when no class fits `bytes`, and
    /// [`TmccError::FreeListExhausted`] when ML1 cannot donate enough
    /// chunks to carve a fresh super-chunk.
    pub fn try_allocate(
        &mut self,
        bytes: usize,
        ml1: &mut Ml1FreeList,
    ) -> Result<SubChunk, TmccError> {
        let class = self.class_for(bytes).ok_or(TmccError::OversizedAllocation {
            requested_bytes: bytes,
            largest_class: *self.class_sizes.last().unwrap_or(&0),
        })?;
        if self.avail[class].is_empty() && self.carve_super(class, ml1).is_none() {
            return Err(TmccError::FreeListExhausted {
                requested_bytes: bytes,
                ml1_free_chunks: ml1.len(),
            });
        }
        // `avail[class]` is non-empty by construction above; both lookups
        // below are guarded rather than asserted so a corrupted state
        // surfaces as a typed error instead of a panic.
        let super_id = *self.avail[class].last().ok_or(TmccError::FreeListExhausted {
            requested_bytes: bytes,
            ml1_free_chunks: ml1.len(),
        })?;
        let sc = self
            .supers
            .get_mut(super_id as usize)
            .and_then(Option::as_mut)
            .ok_or(TmccError::UnknownSubChunk { super_id })?;
        let slot = sc.pop_slot().ok_or(TmccError::FreeListExhausted {
            requested_bytes: bytes,
            ml1_free_chunks: ml1.len(),
        })?;
        if sc.free_head == SLOT_NIL {
            self.avail[class].pop();
        }
        self.allocated_bytes += self.class_sizes[class];
        Ok(SubChunk { class, super_id, slot })
    }

    fn carve_super(&mut self, class: usize, ml1: &mut Ml1FreeList) -> Option<()> {
        let (m, n) = self.geometry[class];
        // Take M chunks from ML1 (§IV-A: "ML1 gives cold victim physical
        // pages to ML2" — here modelled from the free list).
        let mut chunks = [0u32; 8];
        for i in 0..m {
            match ml1.pop() {
                Some(c) => chunks[i] = c,
                None => {
                    for &c in &chunks[..i] {
                        ml1.push(c);
                    }
                    return None;
                }
            }
        }
        let sc = SuperChunk::carve(chunks, m as u8, n as u8);
        let id = match self.free_super_ids.pop() {
            Some(id) => {
                self.supers[id as usize] = Some(sc);
                id
            }
            None => {
                let id = self.supers.len() as u32;
                self.supers.push(Some(sc));
                id
            }
        };
        self.avail[class].push(id);
        self.owned_chunks += m;
        Some(())
    }

    /// Frees a sub-chunk. If its super-chunk becomes entirely free, the
    /// backing chunks return to ML1 (§IV-B).
    ///
    /// # Panics
    ///
    /// Panics on double-free or unknown sub-chunks. Library code should
    /// use [`try_free`](Self::try_free) instead.
    pub fn free(&mut self, sub: SubChunk, ml1: &mut Ml1FreeList) {
        if let Err(e) = self.try_free(sub, ml1) {
            panic!("{e}");
        }
    }

    /// Frees a sub-chunk, returning [`TmccError::DoubleFree`] /
    /// [`TmccError::UnknownSubChunk`] instead of panicking when the
    /// sub-chunk is not a live allocation. If its super-chunk becomes
    /// entirely free, the backing chunks return to ML1 (§IV-B).
    pub fn try_free(&mut self, sub: SubChunk, ml1: &mut Ml1FreeList) -> Result<(), TmccError> {
        let sc = self
            .supers
            .get_mut(sub.super_id as usize)
            .and_then(Option::as_mut)
            .ok_or(TmccError::UnknownSubChunk { super_id: sub.super_id })?;
        if sub.slot >= sc.n {
            return Err(TmccError::UnknownSubChunk { super_id: sub.super_id });
        }
        if sc.allocated & (1u128 << sub.slot) == 0 {
            return Err(TmccError::DoubleFree { super_id: sub.super_id, slot: sub.slot });
        }
        // Newly-freed sub-chunks go to the *top* of the list (§IV-B).
        sc.push_slot(sub.slot);
        self.allocated_bytes -= self.class_sizes[sub.class];
        if sc.free_count() == 1 {
            self.avail[sub.class].push(sub.super_id);
        }
        if sc.free_count() == sc.n as usize {
            // Fully free: dissolve and return chunks to ML1.
            let sc = self.supers[sub.super_id as usize]
                .take()
                .ok_or(TmccError::UnknownSubChunk { super_id: sub.super_id })?;
            self.owned_chunks -= sc.m as usize;
            for &c in &sc.chunks[..sc.m as usize] {
                ml1.push(c);
            }
            self.avail[sub.class].retain(|&id| id != sub.super_id);
            self.free_super_ids.push(sub.super_id);
        }
        Ok(())
    }

    /// Bytes currently allocated to compressed pages.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes
    }

    /// 4 KiB chunks ML2 currently owns (allocated + internal free space).
    pub fn owned_chunks(&self) -> usize {
        self.owned_chunks
    }

    /// DRAM bytes ML2 occupies (owned chunks × 4 KiB) — the capacity
    /// accounting the effective-ratio experiments use.
    pub fn footprint_bytes(&self) -> usize {
        self.owned_chunks * 4096
    }

    /// Heap bytes owned by the free lists (capacity, not length): the
    /// super-chunk slab, each live super-chunk's slot table, and the
    /// per-class availability stacks.
    pub fn heap_bytes(&self) -> usize {
        self.supers.capacity() * std::mem::size_of::<Option<SuperChunk>>()
            + self.supers.iter().flatten().map(SuperChunk::heap_bytes).sum::<usize>()
            + self.free_super_ids.capacity() * std::mem::size_of::<u32>()
            + self.avail.iter().map(|v| v.capacity() * std::mem::size_of::<u32>()).sum::<usize>()
            + self.class_sizes.capacity() * std::mem::size_of::<usize>()
            + self.geometry.capacity() * std::mem::size_of::<(usize, usize)>()
    }

    /// DRAM byte address where sub-chunk `sub` starts. Sub-chunks may span
    /// the boundary between the interlinked chunks of their super-chunk.
    ///
    /// # Panics
    ///
    /// Panics if `sub` does not name a live allocation. Library code
    /// should use [`try_addr_of`](Self::try_addr_of) instead.
    pub fn addr_of(&self, sub: SubChunk) -> u64 {
        match self.try_addr_of(sub) {
            Ok(a) => a,
            Err(e) => panic!("{e}"),
        }
    }

    /// DRAM byte address where sub-chunk `sub` starts, or
    /// [`TmccError::UnknownSubChunk`] when its super-chunk is not live.
    pub fn try_addr_of(&self, sub: SubChunk) -> Result<u64, TmccError> {
        let sc = self
            .supers
            .get(sub.super_id as usize)
            .and_then(Option::as_ref)
            .ok_or(TmccError::UnknownSubChunk { super_id: sub.super_id })?;
        let offset = sub.slot as usize * self.class_sizes[sub.class];
        let chunk = *sc
            .chunks
            .get(offset / 4096)
            .filter(|_| offset / 4096 < sc.m as usize)
            .ok_or(TmccError::UnknownSubChunk { super_id: sub.super_id })?;
        Ok(chunk as u64 * 4096 + (offset % 4096) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_list_lifo() {
        let mut l = ChunkFreeList::with_chunks(3);
        assert_eq!(l.pop(), Some(0));
        l.push(0);
        assert_eq!(l.pop(), Some(0));
        assert_eq!(l.pop(), Some(1));
        assert_eq!(l.pop(), Some(2));
        assert_eq!(l.pop(), None);
    }

    #[test]
    fn chunk_list_matches_naive_vec_order() {
        // The watermark + spill representation must replay the exact pop
        // order of the original `(0..n).rev().collect::<Vec<_>>()` list
        // under an arbitrary interleaving of pops and pushes.
        let mut naive: Vec<u32> = (0..40u32).rev().collect();
        let mut l = ChunkFreeList::with_chunks(40);
        let mut popped = Vec::new();
        let mut step = 0u64;
        for _ in 0..400 {
            step = step.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if !step.is_multiple_of(3) || popped.is_empty() {
                let a = naive.pop();
                let b = l.pop();
                assert_eq!(a, b);
                if let Some(c) = b {
                    popped.push(c);
                }
            } else {
                let c = popped.swap_remove((step % popped.len() as u64) as usize);
                naive.push(c);
                l.push(c);
            }
            assert_eq!(naive.len(), l.len());
        }
    }

    #[test]
    fn chunk_list_free_map_tracks_membership() {
        let mut l = ChunkFreeList::with_chunks(10);
        assert!(l.is_free(0) && l.is_free(9));
        assert!(!l.is_free(10));
        let c = l.pop().expect("non-empty");
        assert!(!l.is_free(c));
        l.push(c);
        assert!(l.is_free(c));
        // Chunks minted beyond the original range (GrowBudget) work too.
        l.push(500);
        assert!(l.is_free(500));
        assert_eq!(l.pop(), Some(500));
        assert!(!l.is_free(500));
    }

    #[test]
    fn geometry_minimizes_waste() {
        // 1536-byte sub-chunks: M=3 chunks -> N=8 sub-chunks, zero waste.
        let (m, n) = Ml2FreeLists::best_geometry(1536);
        assert_eq!((m * 4096) % (n * 1536), (m * 4096) - n * 1536);
        assert_eq!((m * 4096) - n * 1536, 0, "1536B should pack perfectly (M={m}, N={n})");
        // 4096-byte sub-chunks pack 1:1.
        let (m4, n4) = Ml2FreeLists::best_geometry(4096);
        assert_eq!(m4, n4);
    }

    #[test]
    fn allocate_free_conserves_chunks() {
        let mut ml1 = Ml1FreeList::with_chunks(64);
        let mut ml2 = Ml2FreeLists::paper_classes();
        let mut subs = Vec::new();
        for i in 0..20usize {
            let bytes = 200 + i * 150;
            subs.push(ml2.allocate(bytes, &mut ml1).expect("fits"));
        }
        assert!(ml1.len() < 64);
        assert_eq!(ml2.owned_chunks() + ml1.len(), 64);
        for s in subs {
            ml2.free(s, &mut ml1);
        }
        assert_eq!(ml1.len(), 64, "every chunk must return to ML1");
        assert_eq!(ml2.allocated_bytes(), 0);
        assert_eq!(ml2.owned_chunks(), 0);
    }

    #[test]
    fn allocation_prefers_smallest_fitting_class() {
        let mut ml1 = Ml1FreeList::with_chunks(8);
        let mut ml2 = Ml2FreeLists::paper_classes();
        let s = ml2.allocate(513, &mut ml1).expect("fits");
        assert_eq!(ml2.class_size(s.class), 768);
    }

    #[test]
    fn addr_of_is_unique_and_within_owned_chunks() {
        let mut ml1 = Ml1FreeList::with_chunks(32);
        let mut ml2 = Ml2FreeLists::new(vec![1536]);
        let mut addrs = std::collections::HashSet::new();
        let mut subs = Vec::new();
        for _ in 0..16 {
            let s = ml2.allocate(1500, &mut ml1).expect("fits");
            let a = ml2.addr_of(s);
            assert!(addrs.insert(a), "duplicate sub-chunk address {a:#x}");
            subs.push(s);
        }
        // Adjacent slots in one super-chunk are exactly 1536 B apart in
        // the concatenated chunk space.
        let a0 = ml2.addr_of(subs[0]);
        let a1 = ml2.addr_of(subs[1]);
        if subs[0].super_id == subs[1].super_id {
            let off = |s: &super::SubChunk| s.slot as u64 * 1536;
            assert_eq!(off(&subs[1]) - off(&subs[0]), 1536);
            let _ = (a0, a1);
        }
    }

    #[test]
    fn super_chunk_slots_reuse_most_recent_free_first() {
        // One 4096-class super-chunk has n == m, so slot recycling within
        // a single super-chunk is observable: pop 0,1,2 ascending, then a
        // freed slot is handed out again before the next fresh one.
        let mut ml1 = Ml1FreeList::with_chunks(8);
        let mut ml2 = Ml2FreeLists::new(vec![256]);
        let a = ml2.allocate(100, &mut ml1).expect("fits");
        let b = ml2.allocate(100, &mut ml1).expect("fits");
        let c = ml2.allocate(100, &mut ml1).expect("fits");
        assert_eq!((a.slot, b.slot, c.slot), (0, 1, 2));
        ml2.free(b, &mut ml1);
        let d = ml2.allocate(100, &mut ml1).expect("fits");
        assert_eq!(d.slot, 1, "most recently freed slot is reused first");
        let e = ml2.allocate(100, &mut ml1).expect("fits");
        assert_eq!(e.slot, 3, "then the fresh run continues");
    }

    #[test]
    fn oversized_pages_rejected() {
        let mut ml1 = Ml1FreeList::with_chunks(8);
        let mut ml2 = Ml2FreeLists::paper_classes();
        assert!(ml2.allocate(5000, &mut ml1).is_none());
    }

    #[test]
    fn exhausted_ml1_fails_cleanly() {
        let mut ml1 = Ml1FreeList::with_chunks(0);
        let mut ml2 = Ml2FreeLists::paper_classes();
        assert!(ml2.allocate(100, &mut ml1).is_none());
        assert_eq!(ml1.len(), 0);
    }

    #[test]
    #[should_panic(expected = "double-freed")]
    fn double_free_detected() {
        let mut ml1 = Ml1FreeList::with_chunks(8);
        let mut ml2 = Ml2FreeLists::new(vec![2048]);
        let a = ml2.allocate(2000, &mut ml1).expect("fits");
        let _b = ml2.allocate(2000, &mut ml1).expect("fits");
        ml2.free(a, &mut ml1);
        ml2.free(a, &mut ml1);
    }

    #[test]
    fn out_of_range_slot_is_a_typed_error() {
        let mut ml1 = Ml1FreeList::with_chunks(8);
        let mut ml2 = Ml2FreeLists::new(vec![2048]);
        let a = ml2.allocate(2000, &mut ml1).expect("fits");
        let bogus = SubChunk { class: a.class, super_id: a.super_id, slot: 99 };
        assert!(matches!(ml2.try_free(bogus, &mut ml1), Err(TmccError::UnknownSubChunk { .. })));
    }

    #[test]
    fn many_allocations_within_budget() {
        let mut ml1 = Ml1FreeList::with_chunks(256);
        let mut ml2 = Ml2FreeLists::paper_classes();
        let mut live = Vec::new();
        let mut k = 0usize;
        // Allocate until ML1 runs dry, then free half and repeat.
        for round in 0..6 {
            while let Some(s) = ml2.allocate(300 + (k * 97) % 3500, &mut ml1) {
                live.push(s);
                k += 1;
            }
            let half = live.len() / 2;
            for s in live.drain(..half) {
                ml2.free(s, &mut ml1);
            }
            assert!(ml2.owned_chunks() + ml1.len() == 256, "round {round}");
        }
        for s in live.drain(..) {
            ml2.free(s, &mut ml1);
        }
        assert_eq!(ml1.len(), 256);
    }

    #[test]
    fn churn_cycles_do_not_retain_capacity() {
        // Regression for the pool-shrink leak: super-chunk slot tracking
        // (previously a `VecDeque<u8>` per super-chunk) must not pin its
        // peak capacity once allocations drain. Heap bytes after each
        // full drain must stay flat across fill/drain cycles, and a
        // drained ML2 must cost no more than the empty slab + id stacks.
        let mut ml1 = Ml1FreeList::with_chunks(512);
        let mut ml2 = Ml2FreeLists::paper_classes();
        let mut drained_heap = Vec::new();
        for _ in 0..4 {
            let mut live = Vec::new();
            let mut k = 0usize;
            while let Some(s) = ml2.allocate(260 + (k * 131) % 3000, &mut ml1) {
                live.push(s);
                k += 1;
            }
            let peak = ml2.heap_bytes();
            for s in live {
                ml2.free(s, &mut ml1);
            }
            assert_eq!(ml2.owned_chunks(), 0);
            let drained = ml2.heap_bytes();
            assert!(
                drained < peak,
                "drained heap {drained} should drop below peak {peak} \
                 (per-super slot tables must be released on dissolve)"
            );
            drained_heap.push(drained);
        }
        assert!(
            drained_heap.windows(2).all(|w| w[1] <= w[0]),
            "drained heap must not grow across cycles: {drained_heap:?}"
        );
        // ML1's spill also returns to watermark-only cost on demand.
        let before = ml1.heap_bytes();
        while ml1.pop().is_some() {}
        ml1.shrink_to_fit();
        assert!(ml1.heap_bytes() < before.max(1));
    }
}
