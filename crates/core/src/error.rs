//! Typed errors for the capacity-pressure resilience layer.
//!
//! Library paths that used to `panic!`/`expect` on resource exhaustion or
//! broken invariants now propagate [`TmccError`] so callers (the bench
//! harness, fault-injection sweeps, downstream users of the crate) can
//! distinguish "this configuration is infeasible" from "the simulator has
//! a bug" and react — retry with a larger budget, record the failure, or
//! abort with context. Construction-time convenience wrappers
//! ([`crate::System::new`], `TwoLevelScheme::new`) still panic, but they
//! are thin shims over the fallible `try_*` constructors.

use std::fmt;
use tmcc_compression::CodecError;

/// Result alias for fallible TMCC operations.
pub type Result<T> = std::result::Result<T, TmccError>;

/// Everything that can go wrong inside the simulated memory system.
#[derive(Debug, Clone, PartialEq)]
pub enum TmccError {
    /// The DRAM budget cannot hold the workload even fully compressed.
    InfeasibleBudget {
        /// 4 KiB frames the budget provides.
        budget_frames: u64,
        /// Frames the workload needs at minimum (page table pinned,
        /// everything else compressed, plus the eviction reserve).
        required_frames: u64,
        /// Which stage of placement ran out of room.
        stage: &'static str,
    },
    /// An allocation could not be satisfied because the free lists ran
    /// dry (ML1 had no chunks left to donate to ML2).
    FreeListExhausted {
        /// Bytes the failed allocation asked for.
        requested_bytes: usize,
        /// Free 4 KiB chunks ML1 had at the time.
        ml1_free_chunks: usize,
    },
    /// An allocation request exceeded the largest sub-chunk size class.
    OversizedAllocation {
        /// Bytes requested.
        requested_bytes: usize,
        /// The largest class available.
        largest_class: usize,
    },
    /// The memory controller was asked about a page it never placed.
    UnplacedPage {
        /// The physical page number.
        ppn: u64,
    },
    /// The workload touched a virtual page the page table does not map.
    UnmappedVpn {
        /// The virtual page number.
        vpn: u64,
    },
    /// A sub-chunk was freed twice.
    DoubleFree {
        /// Super-chunk id of the offending free.
        super_id: u32,
        /// Slot within the super-chunk.
        slot: u8,
    },
    /// An operation named a sub-chunk whose super-chunk is not live.
    UnknownSubChunk {
        /// The super-chunk id that was not found.
        super_id: u32,
    },
    /// The invariant auditor ([`crate::System::validate`]) found the
    /// system in an inconsistent state.
    InvariantViolation {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// The run was cancelled through its [`crate::RunHandle`] (the bench
    /// watchdog arms one per sweep point and cancels on deadline overrun).
    Cancelled {
        /// Accesses executed (warmup included) when the cancellation was
        /// observed.
        at_access: u64,
    },
    /// A codec-level integrity failure surfaced outside the recovery
    /// ladder — a decode the scheme *expected* to succeed (clean stream,
    /// verified seal) returned a typed [`CodecError`]. Ladder-handled
    /// corruption never raises this; it lands in the corruption counters.
    Codec {
        /// Which operation hit the error.
        context: &'static str,
        /// The underlying decode failure.
        error: CodecError,
    },
}

impl TmccError {
    /// Whether this error is a cooperative cancellation (watchdog
    /// timeout) rather than a simulation-level failure.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, TmccError::Cancelled { .. })
    }
}

impl fmt::Display for TmccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmccError::InfeasibleBudget { budget_frames, required_frames, stage } => write!(
                f,
                "DRAM budget infeasible during {stage}: {budget_frames} frames available, \
                 at least {required_frames} required even fully compressed"
            ),
            TmccError::FreeListExhausted { requested_bytes, ml1_free_chunks } => write!(
                f,
                "free lists exhausted: cannot allocate {requested_bytes} bytes \
                 ({ml1_free_chunks} free ML1 chunks)"
            ),
            TmccError::OversizedAllocation { requested_bytes, largest_class } => write!(
                f,
                "allocation of {requested_bytes} bytes exceeds the largest \
                 sub-chunk class ({largest_class} bytes)"
            ),
            TmccError::UnplacedPage { ppn } => {
                write!(f, "access to unplaced physical page {ppn:#x}")
            }
            TmccError::UnmappedVpn { vpn } => {
                write!(f, "workload touched unmapped virtual page {vpn:#x}")
            }
            TmccError::DoubleFree { super_id, slot } => {
                write!(f, "sub-chunk slot {slot} of super-chunk {super_id} double-freed")
            }
            TmccError::UnknownSubChunk { super_id } => {
                write!(f, "super-chunk {super_id} is not live")
            }
            TmccError::InvariantViolation { detail } => {
                write!(f, "invariant violation: {detail}")
            }
            TmccError::Cancelled { at_access } => {
                write!(f, "run cancelled after {at_access} accesses")
            }
            TmccError::Codec { context, error } => {
                write!(f, "codec failure during {context}: {error}")
            }
        }
    }
}

impl std::error::Error for TmccError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = TmccError::InfeasibleBudget {
            budget_frames: 10,
            required_frames: 100,
            stage: "page-table pinning",
        };
        let msg = e.to_string();
        assert!(msg.contains("10 frames"));
        assert!(msg.contains("100"));
        assert!(msg.contains("page-table pinning"));

        let e = TmccError::UnmappedVpn { vpn: 0xabc };
        assert!(e.to_string().contains("0xabc"));

        let e = TmccError::Codec {
            context: "sealed page decode",
            error: CodecError::ChecksumMismatch { stored: 1, computed: 2 },
        };
        let msg = e.to_string();
        assert!(msg.contains("sealed page decode"));
        assert!(msg.contains("CRC mismatch"));
    }

    #[test]
    fn is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&TmccError::UnplacedPage { ppn: 1 });
    }
}
