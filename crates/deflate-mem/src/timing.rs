//! Cycle/latency model of the memory-specialized Deflate ASIC (Table II).
//!
//! This reproduction replaces the paper's Verilator RTL measurements with an
//! analytic cycle model built from the per-stage rates the paper states
//! (§V-B4):
//!
//! * LZ front end consumes **8 bytes/cycle**, with pipeline-hazard stalls
//!   that depend on match structure;
//! * `Build Reduced Tree` takes up to **32 cycles**; `Write Reduced Tree`
//!   and `Read Reduced Tree` take **16 cycles**;
//! * Huffman encode emits up to **32 bits/cycle**; Huffman decode consumes
//!   up to 8 codes or **32 bits/cycle**; LZ decode outputs **8 B/cycle**;
//! * the clock is **2.5 GHz** (§V-B5).
//!
//! Two calibration constants — the decompressor pipeline-fill depth and the
//! compressor accumulate/replay handoff — are set so the model lands on the
//! paper's Table II for a typical 3.4×-compressible page. They are plainly
//! labelled; everything else follows from the stated rates.
//!
//! The *decompressor* processes pages serially (its tree registers hold one
//! page's tree), so its throughput equals `page / full latency` — exactly
//! the relation in Table II (277 ns ↔ 14.8 GB/s). The *compressor* is
//! pipelined two-deep across pages (LZ on page N+1 while Huffman handles
//! page N, Fig. 14), so its throughput is set by the slower of the two
//! halves while its latency spans both plus the handoff.

use crate::lz::LzStats;
use crate::PAGE_SIZE;

/// Clock frequency of the synthesized design, Hz (§V-B5).
pub const CLOCK_HZ: f64 = 2.5e9;
/// Nanoseconds per cycle at [`CLOCK_HZ`].
pub const NS_PER_CYCLE: f64 = 1e9 / CLOCK_HZ;

/// Latency/throughput figures for one page, in cycles and nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// End-to-end cycles for the page.
    pub cycles: u64,
    /// End-to-end latency in nanoseconds.
    pub ns: f64,
}

impl TimingReport {
    fn from_cycles(cycles: u64) -> Self {
        Self { cycles, ns: cycles as f64 * NS_PER_CYCLE }
    }
}

/// The Deflate cycle model.
///
/// # Examples
///
/// ```
/// use tmcc_deflate::DeflateTiming;
///
/// let t = DeflateTiming::default();
/// // A typical 3.4x page: decompression ~277 ns (paper Table II).
/// let rep = t.decompress_latency(4096 * 8 * 10 / 34, 4096);
/// assert!((rep.ns - 277.0).abs() < 15.0, "got {}", rep.ns);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeflateTiming {
    /// Bytes the LZ front end accepts per cycle.
    pub lz_bytes_per_cycle: u64,
    /// Extra stall cycles charged per this many matches (pipeline hazards
    /// in match selection, §V-B4). One stall per `match_stall_div` matches.
    pub match_stall_div: u64,
    /// Cycles to build the reduced tree.
    pub tree_build_cycles: u64,
    /// Cycles to write or read the plain-format tree.
    pub tree_io_cycles: u64,
    /// Bits the Huffman encoder emits per cycle.
    pub huffman_bits_per_cycle: u64,
    /// LZ symbols the Huffman encoder consumes per cycle.
    pub huffman_syms_per_cycle: u64,
    /// Bytes the LZ decoder emits per cycle.
    pub lz_out_bytes_per_cycle: u64,
    /// Calibrated: decompressor pipeline-fill cycles (multi-stage Huffman
    /// decoder + LZ decode occupancy before the first bytes emerge).
    pub decomp_pipe_fill: u64,
}

impl Default for DeflateTiming {
    fn default() -> Self {
        Self {
            lz_bytes_per_cycle: 8,
            match_stall_div: 4,
            tree_build_cycles: 32,
            tree_io_cycles: 16,
            huffman_bits_per_cycle: 32,
            huffman_syms_per_cycle: 4,
            lz_out_bytes_per_cycle: 8,
            decomp_pipe_fill: 164,
        }
    }
}

impl DeflateTiming {
    /// Cycles the LZ compression stage occupies for an `n`-byte input with
    /// the given match structure.
    pub fn lz_stage_cycles(&self, n: usize, stats: LzStats) -> u64 {
        (n as u64).div_ceil(self.lz_bytes_per_cycle) + stats.matches as u64 / self.match_stall_div
    }

    /// Cycles the Huffman half occupies for an LZ stream of `lz_len` bytes
    /// compressing to `huff_bits` bits.
    pub fn huffman_stage_cycles(&self, lz_len: usize, huff_bits: usize) -> u64 {
        let consume = (lz_len as u64).div_ceil(self.huffman_syms_per_cycle);
        let emit = (huff_bits as u64).div_ceil(self.huffman_bits_per_cycle);
        self.tree_build_cycles + self.tree_io_cycles + consume.max(emit)
    }

    /// End-to-end compression latency for one page: LZ pass, one
    /// accumulate/replay handoff period, then the Huffman half (Fig. 14's
    /// two-page pipeline seen from a single page).
    pub fn compress_latency(
        &self,
        n: usize,
        stats: LzStats,
        lz_len: usize,
        huff_bits: usize,
    ) -> TimingReport {
        let lz = self.lz_stage_cycles(n, stats);
        let huff = self.huffman_stage_cycles(lz_len, huff_bits);
        TimingReport::from_cycles(lz + lz.max(huff) + huff)
    }

    /// Steady-state compressor throughput in GB/s: the two-page pipeline's
    /// period is the slower half.
    pub fn compress_throughput_gbps(
        &self,
        n: usize,
        stats: LzStats,
        lz_len: usize,
        huff_bits: usize,
    ) -> f64 {
        let period =
            self.lz_stage_cycles(n, stats).max(self.huffman_stage_cycles(lz_len, huff_bits));
        n as f64 / (period as f64 * NS_PER_CYCLE)
    }

    /// Full-page decompression latency: tree read, pipeline fill, then the
    /// slower of compressed-bit consumption and plaintext production.
    pub fn decompress_latency(&self, comp_bits: usize, plain_bytes: usize) -> TimingReport {
        let input = (comp_bits as u64).div_ceil(self.huffman_bits_per_cycle);
        let output = (plain_bytes as u64).div_ceil(self.lz_out_bytes_per_cycle);
        TimingReport::from_cycles(self.tree_io_cycles + self.decomp_pipe_fill + input.max(output))
    }

    /// Average latency until a *needed block* of the page is available —
    /// the paper's half-page latency (Table II): the needed block sits at
    /// the middle of the page on average, and only about half the pipeline
    /// fill is in front of it.
    pub fn half_page_latency(&self, comp_bits: usize, plain_bytes: usize) -> TimingReport {
        let input = (comp_bits as u64 / 2).div_ceil(self.huffman_bits_per_cycle);
        let output = (plain_bytes as u64 / 2).div_ceil(self.lz_out_bytes_per_cycle);
        TimingReport::from_cycles(
            self.tree_io_cycles + self.decomp_pipe_fill / 2 + input.max(output),
        )
    }

    /// Decompressor throughput in GB/s. Pages are processed serially (the
    /// tree registers hold one tree), so throughput = page / latency.
    pub fn decompress_throughput_gbps(&self, comp_bits: usize, plain_bytes: usize) -> f64 {
        plain_bytes as f64 / self.decompress_latency(comp_bits, plain_bytes).ns
    }

    /// Typical-page reference numbers (3.4× compression, ~350 matches),
    /// used for Table II and as fixed service latencies in the system
    /// simulator.
    pub fn table2_reference(&self) -> ReferenceTimings {
        let stats = LzStats { literals: 1200, matches: 350, matched_bytes: PAGE_SIZE - 1200 };
        let lz_len = 1700usize;
        let huff_bits = PAGE_SIZE * 8 * 10 / 34; // 3.4x overall
        ReferenceTimings {
            compress: self.compress_latency(PAGE_SIZE, stats, lz_len, huff_bits),
            compress_gbps: self.compress_throughput_gbps(PAGE_SIZE, stats, lz_len, huff_bits),
            decompress: self.decompress_latency(huff_bits, PAGE_SIZE),
            decompress_half: self.half_page_latency(huff_bits, PAGE_SIZE),
            decompress_gbps: self.decompress_throughput_gbps(huff_bits, PAGE_SIZE),
        }
    }
}

/// The Table II row for this design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceTimings {
    /// Full-page compression latency.
    pub compress: TimingReport,
    /// Compressor throughput, GB/s.
    pub compress_gbps: f64,
    /// Full-page decompression latency.
    pub decompress: TimingReport,
    /// Half-page (needed-block) decompression latency.
    pub decompress_half: TimingReport,
    /// Decompressor throughput, GB/s.
    pub decompress_gbps: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_table2_decompressor() {
        let r = DeflateTiming::default().table2_reference();
        // Paper: 277 ns full page, 140 ns half page, 14.8 GB/s.
        assert!((r.decompress.ns - 277.0).abs() < 10.0, "{:?}", r.decompress);
        assert!((r.decompress_half.ns - 140.0).abs() < 10.0, "{:?}", r.decompress_half);
        assert!((r.decompress_gbps - 14.8).abs() < 1.0, "{}", r.decompress_gbps);
    }

    #[test]
    fn reference_matches_table2_compressor() {
        let r = DeflateTiming::default().table2_reference();
        // Paper: 662 ns latency, 17.2 GB/s throughput.
        assert!((r.compress.ns - 662.0).abs() < 60.0, "{:?}", r.compress);
        assert!((r.compress_gbps - 17.2).abs() < 3.0, "{}", r.compress_gbps);
    }

    #[test]
    fn decompress_scales_with_output() {
        let t = DeflateTiming::default();
        let small = t.decompress_latency(2000, 1024).cycles;
        let large = t.decompress_latency(2000, 4096).cycles;
        assert!(large > small);
    }

    #[test]
    fn incompressible_pages_are_input_bound() {
        let t = DeflateTiming::default();
        // Compressed bits exceed what the output side needs: input bound.
        let rep = t.decompress_latency(PAGE_SIZE * 17, PAGE_SIZE);
        assert!(rep.cycles > t.decompress_latency(PAGE_SIZE * 8, PAGE_SIZE).cycles);
    }

    #[test]
    fn half_page_is_faster_than_full() {
        let t = DeflateTiming::default();
        let full = t.decompress_latency(9638, PAGE_SIZE);
        let half = t.half_page_latency(9638, PAGE_SIZE);
        assert!(half.cycles < full.cycles);
    }
}
