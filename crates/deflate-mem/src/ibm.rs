//! Analytic model of IBM's general-purpose ASIC Deflate (Power9 / z15,
//! paper reference [11]).
//!
//! The paper compares against IBM's accelerator using the published
//! formula: each independent input pays a setup time `T0` of 650–780 ns
//! (dominated by canonical-Huffman tree construction/reconstruction) before
//! streaming at up to 15 GB/s. For 4 KiB pages this yields the Table II
//! row: 1100 ns decompression, 1050 ns compression, ~3.7 / 3.9 GB/s.
//!
//! `T0` here is calibrated from Table II's 4 KiB latencies (827 ns for the
//! decompressor, 777 ns for the compressor — the upper end of the published
//! 650–780 ns range plus pipeline drain), so `latency(4096)` reproduces the
//! table exactly and other sizes follow the published formula.

/// Peak streaming rate of the IBM accelerator, bytes/ns (15 GB/s).
pub const IBM_STREAM_GBPS: f64 = 15.0;

/// The analytic IBM ASIC Deflate model.
///
/// # Examples
///
/// ```
/// use tmcc_deflate::IbmDeflateModel;
///
/// let ibm = IbmDeflateModel::default();
/// assert!((ibm.decompress_latency_ns(4096) - 1100.0).abs() < 1.0);
/// assert!((ibm.compress_latency_ns(4096) - 1050.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IbmDeflateModel {
    /// Decompression setup time, ns.
    pub t0_decompress_ns: f64,
    /// Compression setup time, ns.
    pub t0_compress_ns: f64,
    /// Streaming rate, GB/s.
    pub stream_gbps: f64,
}

impl Default for IbmDeflateModel {
    fn default() -> Self {
        Self { t0_decompress_ns: 827.0, t0_compress_ns: 777.0, stream_gbps: IBM_STREAM_GBPS }
    }
}

impl IbmDeflateModel {
    /// Latency to decompress an independent `bytes`-long input, ns.
    pub fn decompress_latency_ns(&self, bytes: usize) -> f64 {
        self.t0_decompress_ns + bytes as f64 / self.stream_gbps
    }

    /// Latency to compress an independent `bytes`-long input, ns.
    pub fn compress_latency_ns(&self, bytes: usize) -> f64 {
        self.t0_compress_ns + bytes as f64 / self.stream_gbps
    }

    /// Average latency until a needed block becomes available: setup plus
    /// streaming to the middle of the page. (The paper's Table II reports
    /// 878 ns; this formula gives 964 ns — the difference is their more
    /// detailed internal model, noted in EXPERIMENTS.md.)
    pub fn half_page_decompress_ns(&self, bytes: usize) -> f64 {
        self.t0_decompress_ns + bytes as f64 / 2.0 / self.stream_gbps
    }

    /// Sustained throughput on back-to-back independent `bytes` inputs,
    /// GB/s: the setup time is paid per input.
    pub fn decompress_throughput_gbps(&self, bytes: usize) -> f64 {
        bytes as f64 / self.decompress_latency_ns(bytes)
    }

    /// Sustained compression throughput on independent inputs, GB/s.
    pub fn compress_throughput_gbps(&self, bytes: usize) -> f64 {
        bytes as f64 / self.compress_latency_ns(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_latencies() {
        let ibm = IbmDeflateModel::default();
        assert!((ibm.decompress_latency_ns(4096) - 1100.1).abs() < 1.0);
        assert!((ibm.compress_latency_ns(4096) - 1050.1).abs() < 1.0);
    }

    #[test]
    fn table2_throughputs() {
        let ibm = IbmDeflateModel::default();
        assert!((ibm.decompress_throughput_gbps(4096) - 3.7).abs() < 0.1);
        assert!((ibm.compress_throughput_gbps(4096) - 3.9).abs() < 0.1);
    }

    #[test]
    fn large_streams_approach_peak_rate() {
        let ibm = IbmDeflateModel::default();
        let tp = ibm.decompress_throughput_gbps(256 * 1024);
        assert!(tp > 14.0, "large inputs amortize T0, got {tp}");
    }

    #[test]
    fn setup_dominates_small_inputs() {
        let ibm = IbmDeflateModel::default();
        // A 4 KiB page spends most of its time in setup — the paper's
        // motivation for specializing (§IV-C).
        let total = ibm.decompress_latency_ns(4096);
        assert!(ibm.t0_decompress_ns / total > 0.7);
    }
}
