//! The complete memory-specialized Deflate codec (paper Fig. 14) and the
//! software-Deflate reference.
//!
//! [`MemDeflate`] composes the LZ front end and the reduced Huffman back
//! end, adds the paper's *dynamic Huffman skipping* (§V-B1: skip Huffman
//! for pages it would expand — worth ~5 % geomean ratio) and the optional
//! *1.1-Pass* approximate frequency counting (§V-B3: IBM's trick, supported
//! as a tunable but disabled by default because it hurts 4 KiB pages), and
//! produces self-describing [`CompressedPage`]s.
//!
//! [`SoftwareDeflate`] is the gzip stand-in used as the compression-ratio
//! yardstick in Fig. 15: a 32 KiB-window LZ plus a full 256-symbol
//! canonical Huffman coder, run over whole memory dumps so the window spans
//! pages.

use crate::huffman::{ReducedHuffman, DEFAULT_MAX_DEPTH};
use crate::lz::{LzCodec, LzStats};
use crate::timing::{DeflateTiming, TimingReport};
use tmcc_compression::BitWriter;

/// How a page is stored (first byte of the serialized form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageMode {
    /// All-zero page: header only.
    Zero = 0,
    /// LZ + reduced Huffman (the common case).
    LzHuffman = 1,
    /// LZ only — Huffman dynamically skipped (§V-B1).
    LzOnly = 2,
    /// Stored raw — the page expanded under LZ too (incompressible).
    Raw = 3,
}

/// A compressed page: mode header, original/LZ lengths and the payload.
///
/// `stored_len` is the size the page occupies in ML2 and what the capacity
/// accounting uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedPage {
    mode: PageMode,
    original_len: usize,
    lz_len: usize,
    payload: Vec<u8>,
    stats: LzStats,
}

impl CompressedPage {
    /// Bytes this page occupies when stored: payload plus a 3-byte header
    /// (mode + 16-bit LZ length).
    pub fn stored_len(&self) -> usize {
        match self.mode {
            PageMode::Zero => 1,
            _ => 3 + self.payload.len(),
        }
    }

    /// The storage mode.
    pub fn mode(&self) -> PageMode {
        self.mode
    }

    /// Length of the original page.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Length of the intermediate LZ stream (0 for zero pages).
    pub fn lz_len(&self) -> usize {
        self.lz_len
    }

    /// LZ token statistics (for the cycle model).
    pub fn lz_stats(&self) -> LzStats {
        self.stats
    }

    /// Compression ratio achieved for this page.
    pub fn ratio(&self) -> f64 {
        self.original_len as f64 / self.stored_len() as f64
    }

    /// Payload bits excluding headers — what the decompressor's input side
    /// must consume.
    pub fn payload_bits(&self) -> usize {
        self.payload.len() * 8
    }
}

/// Configuration of the memory-specialized Deflate (the §V-B design space).
///
/// Use the builder-style setters; defaults are the paper's chosen design
/// point (1 KiB CAM, 16-leaf tree, depth 15, dynamic skip on, 1.1-Pass
/// off).
///
/// # Examples
///
/// ```
/// use tmcc_deflate::DeflateParams;
///
/// let params = DeflateParams::new().cam_bytes(512).max_tree_depth(8);
/// assert_eq!(params.cam(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeflateParams {
    cam_bytes: usize,
    max_tree_depth: u32,
    dynamic_skip: bool,
    one_one_pass: bool,
    /// Sample bytes for 1.1-Pass frequency counting.
    sample_bytes: usize,
}

impl DeflateParams {
    /// The paper's design point.
    pub fn new() -> Self {
        Self {
            cam_bytes: 1024,
            max_tree_depth: DEFAULT_MAX_DEPTH,
            dynamic_skip: true,
            one_one_pass: false,
            sample_bytes: 512,
        }
    }

    /// Sets the LZ sliding-window (CAM) size in bytes.
    pub fn cam_bytes(mut self, bytes: usize) -> Self {
        self.cam_bytes = bytes;
        self
    }

    /// Sets the reduced-tree depth threshold.
    pub fn max_tree_depth(mut self, depth: u32) -> Self {
        self.max_tree_depth = depth;
        self
    }

    /// Enables or disables dynamic Huffman skipping.
    pub fn dynamic_skip(mut self, on: bool) -> Self {
        self.dynamic_skip = on;
        self
    }

    /// Enables IBM-style 1.1-Pass approximate frequency counting with the
    /// given sample size (hurts ratio on 4 KiB pages; off by default).
    pub fn one_one_pass(mut self, on: bool, sample_bytes: usize) -> Self {
        self.one_one_pass = on;
        self.sample_bytes = sample_bytes;
        self
    }

    /// The configured CAM size.
    pub fn cam(&self) -> usize {
        self.cam_bytes
    }

    /// The configured depth threshold.
    pub fn depth(&self) -> u32 {
        self.max_tree_depth
    }

    /// Whether dynamic Huffman skipping is enabled.
    pub fn skip_enabled(&self) -> bool {
        self.dynamic_skip
    }
}

impl Default for DeflateParams {
    fn default() -> Self {
        Self::new()
    }
}

/// The memory-specialized ASIC Deflate codec (functional model).
///
/// # Examples
///
/// ```
/// use tmcc_deflate::MemDeflate;
///
/// let codec = MemDeflate::default();
/// let mut page = vec![0u8; 4096];
/// for (i, b) in page.iter_mut().enumerate() {
///     *b = [0u8, 0, 7, 42][i % 4];
/// }
/// let c = codec.compress_page(&page);
/// assert!(c.ratio() > 3.0);
/// assert_eq!(codec.decompress_page(&c), page);
/// ```
#[derive(Debug, Clone)]
pub struct MemDeflate {
    params: DeflateParams,
    lz: LzCodec,
    timing: DeflateTiming,
}

impl MemDeflate {
    /// Builds the codec from parameters.
    pub fn new(params: DeflateParams) -> Self {
        Self { params, lz: LzCodec::new(params.cam_bytes), timing: DeflateTiming::default() }
    }

    /// The configured parameters.
    pub fn params(&self) -> DeflateParams {
        self.params
    }

    /// The cycle model attached to this codec.
    pub fn timing(&self) -> &DeflateTiming {
        &self.timing
    }

    /// Compresses one page (any length up to 64 KiB; normally 4 KiB).
    ///
    /// # Panics
    ///
    /// Panics if `page` is empty or longer than 65 535 bytes (the 16-bit
    /// LZ-length header).
    pub fn compress_page(&self, page: &[u8]) -> CompressedPage {
        assert!(!page.is_empty() && page.len() < 65536, "page length must be in 1..65536");
        if page.iter().all(|&b| b == 0) {
            return CompressedPage {
                mode: PageMode::Zero,
                original_len: page.len(),
                lz_len: 0,
                payload: Vec::new(),
                stats: LzStats::default(),
            };
        }
        let (lz_stream, stats) = self.lz.compress(page);
        // Build the reduced tree from the full LZ output, or from a prefix
        // sample under 1.1-Pass.
        let tree_input = if self.params.one_one_pass {
            &lz_stream[..lz_stream.len().min(self.params.sample_bytes)]
        } else {
            &lz_stream[..]
        };
        let tree = ReducedHuffman::build(tree_input, self.params.max_tree_depth);
        let huff_bits = tree.encoded_bits(&lz_stream);
        let huff_bytes = ReducedHuffman::TREE_BYTES + huff_bits.div_ceil(8);

        let (mode, payload) = if self.params.dynamic_skip && huff_bytes >= lz_stream.len() {
            (PageMode::LzOnly, lz_stream.clone())
        } else {
            let mut w = BitWriter::new();
            tree.write_tree(&mut w);
            tree.encode_into(&mut w, &lz_stream);
            (PageMode::LzHuffman, w.into_bytes())
        };
        if payload.len() + 3 >= page.len() {
            return CompressedPage {
                mode: PageMode::Raw,
                original_len: page.len(),
                lz_len: lz_stream.len(),
                payload: page.to_vec(),
                stats,
            };
        }
        CompressedPage { mode, original_len: page.len(), lz_len: lz_stream.len(), payload, stats }
    }

    /// Restores the original page.
    ///
    /// # Panics
    ///
    /// Panics on pages not produced by this codec configuration.
    pub fn decompress_page(&self, page: &CompressedPage) -> Vec<u8> {
        match page.mode {
            PageMode::Zero => vec![0u8; page.original_len],
            PageMode::Raw => page.payload.clone(),
            PageMode::LzOnly => self.lz.decompress(&page.payload),
            PageMode::LzHuffman => {
                let (tree, rest) = ReducedHuffman::read_tree(&page.payload);
                let lz_stream = tree.decode(rest, page.lz_len);
                self.lz.decompress(&lz_stream)
            }
        }
    }

    /// Compressed size of a page without materializing the payload —
    /// convenience for capacity accounting.
    pub fn compressed_size(&self, page: &[u8]) -> usize {
        self.compress_page(page).stored_len()
    }

    /// Modelled latency to compress this page.
    pub fn compress_latency(&self, page: &CompressedPage) -> TimingReport {
        self.timing.compress_latency(
            page.original_len,
            page.stats,
            page.lz_len,
            page.payload_bits(),
        )
    }

    /// Modelled latency to decompress the full page.
    pub fn decompress_latency(&self, page: &CompressedPage) -> TimingReport {
        self.timing.decompress_latency(page.payload_bits(), page.original_len)
    }

    /// Modelled average latency until a needed block is available.
    pub fn needed_block_latency(&self, page: &CompressedPage) -> TimingReport {
        self.timing.half_page_latency(page.payload_bits(), page.original_len)
    }
}

impl Default for MemDeflate {
    fn default() -> Self {
        Self::new(DeflateParams::new())
    }
}

/// The gzip stand-in: 32 KiB-window LZ + full canonical Huffman, applied to
/// arbitrary-length streams (whole memory dumps).
#[derive(Debug, Clone)]
pub struct SoftwareDeflate {
    lz: LzCodec,
}

impl SoftwareDeflate {
    /// Creates the reference codec.
    pub fn new() -> Self {
        Self { lz: LzCodec::new(32768) }
    }

    /// Compresses a stream; returns the stored bytes
    /// (`[u32 original_len][u32 lz_len][huffman stream]`).
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        let (lz_stream, _) = self.lz.compress(data);
        let tree = crate::huffman::FullHuffman::build(&lz_stream);
        let encoded = tree.encode(&lz_stream);
        let mut out = Vec::with_capacity(encoded.len() + 8);
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        out.extend_from_slice(&(lz_stream.len() as u32).to_le_bytes());
        // Keep whichever of (huffman, raw lz) is smaller, flagged by a byte.
        if encoded.len() < lz_stream.len() {
            out.push(1);
            out.extend_from_slice(&encoded);
        } else {
            out.push(0);
            out.extend_from_slice(&lz_stream);
        }
        out
    }

    /// Restores the original stream.
    ///
    /// # Panics
    ///
    /// Panics on malformed input.
    pub fn decompress(&self, data: &[u8]) -> Vec<u8> {
        let original_len = u32::from_le_bytes(data[..4].try_into().expect("len")) as usize;
        let lz_len = u32::from_le_bytes(data[4..8].try_into().expect("len")) as usize;
        let lz_stream = match data[8] {
            1 => crate::huffman::FullHuffman::decode(&data[9..], lz_len),
            _ => data[9..9 + lz_len].to_vec(),
        };
        let out = self.lz.decompress(&lz_stream);
        assert_eq!(out.len(), original_len, "length mismatch");
        out
    }

    /// Compressed size of `data` under the reference codec.
    pub fn compressed_size(&self, data: &[u8]) -> usize {
        self.compress(data).len()
    }
}

impl Default for SoftwareDeflate {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    fn textish_page() -> Vec<u8> {
        b"key=value; next=0x7fffaa00; flags=rw-; count=0001732; "
            .iter()
            .copied()
            .cycle()
            .take(PAGE_SIZE)
            .collect()
    }

    #[test]
    fn zero_page_is_one_byte() {
        let codec = MemDeflate::default();
        let page = vec![0u8; PAGE_SIZE];
        let c = codec.compress_page(&page);
        assert_eq!(c.mode(), PageMode::Zero);
        assert_eq!(c.stored_len(), 1);
        assert_eq!(codec.decompress_page(&c), page);
    }

    #[test]
    fn text_page_round_trips_with_good_ratio() {
        let codec = MemDeflate::default();
        let page = textish_page();
        let c = codec.compress_page(&page);
        assert_eq!(c.mode(), PageMode::LzHuffman);
        assert!(c.ratio() > 4.0, "ratio {}", c.ratio());
        assert_eq!(codec.decompress_page(&c), page);
    }

    #[test]
    fn random_page_stored_raw() {
        let codec = MemDeflate::default();
        let mut page = vec![0u8; PAGE_SIZE];
        let mut x = 0x12345678u64;
        for b in page.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (x >> 33) as u8;
        }
        let c = codec.compress_page(&page);
        assert_eq!(c.mode(), PageMode::Raw);
        assert_eq!(c.stored_len(), PAGE_SIZE + 3);
        assert_eq!(codec.decompress_page(&c), page);
    }

    #[test]
    fn dynamic_skip_prefers_lz_only_when_huffman_expands() {
        // LZ output with ~uniform byte distribution makes the reduced tree
        // useless; with skipping on we must not pay for it.
        let mut page = vec![0u8; PAGE_SIZE];
        for (i, b) in page.iter_mut().enumerate() {
            *b = ((i * 37) % 251) as u8;
        }
        // Duplicate the first half into the second so LZ itself wins.
        let half: Vec<u8> = page[..PAGE_SIZE / 2].to_vec();
        page[PAGE_SIZE / 2..].copy_from_slice(&half);
        let with_skip = MemDeflate::new(DeflateParams::new().dynamic_skip(true));
        let without = MemDeflate::new(DeflateParams::new().dynamic_skip(false));
        let a = with_skip.compress_page(&page);
        let b = without.compress_page(&page);
        assert!(a.stored_len() <= b.stored_len());
        assert_eq!(with_skip.decompress_page(&a), page);
        assert_eq!(without.decompress_page(&b), page);
    }

    #[test]
    fn one_one_pass_never_breaks_round_trip() {
        let codec = MemDeflate::new(DeflateParams::new().one_one_pass(true, 512));
        let page = textish_page();
        let c = codec.compress_page(&page);
        assert_eq!(codec.decompress_page(&c), page);
    }

    #[test]
    fn small_cam_round_trips() {
        for cam in [256, 512, 2048, 4096] {
            let codec = MemDeflate::new(DeflateParams::new().cam_bytes(cam));
            let page = textish_page();
            let c = codec.compress_page(&page);
            assert_eq!(codec.decompress_page(&c), page, "cam {cam}");
        }
    }

    #[test]
    fn latency_model_attached() {
        let codec = MemDeflate::default();
        let c = codec.compress_page(&textish_page());
        let d = codec.decompress_latency(&c);
        let h = codec.needed_block_latency(&c);
        assert!(d.ns > 100.0 && d.ns < 400.0, "{d:?}");
        assert!(h.ns < d.ns);
    }

    #[test]
    fn software_deflate_round_trips_multi_page() {
        let sw = SoftwareDeflate::new();
        let mut dump = Vec::new();
        for _ in 0..4 {
            dump.extend_from_slice(&textish_page());
        }
        let c = sw.compress(&dump);
        assert!(c.len() < dump.len() / 4);
        assert_eq!(sw.decompress(&c), dump);
    }

    #[test]
    fn software_beats_or_matches_mem_deflate_on_dumps() {
        // The gzip stand-in (32 KiB window, full tree, cross-page) should
        // compress a multi-page dump at least as well as per-page
        // memory-specialized deflate — the Fig. 15 relationship.
        let sw = SoftwareDeflate::new();
        let mem = MemDeflate::default();
        let mut dump = Vec::new();
        for k in 0..8u8 {
            let mut p = textish_page();
            for b in p.iter_mut().step_by(97) {
                *b = b.wrapping_add(k);
            }
            dump.extend_from_slice(&p);
        }
        let sw_size = sw.compressed_size(&dump);
        let mem_size: usize = dump.chunks_exact(PAGE_SIZE).map(|p| mem.compressed_size(p)).sum();
        assert!(sw_size <= mem_size, "sw {sw_size} vs mem {mem_size}");
    }

    #[test]
    #[should_panic(expected = "page length must be in 1..65536")]
    fn rejects_empty_page() {
        let _ = MemDeflate::default().compress_page(&[]);
    }
}
