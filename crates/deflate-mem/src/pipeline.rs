//! The complete memory-specialized Deflate codec (paper Fig. 14) and the
//! software-Deflate reference.
//!
//! [`MemDeflate`] composes the LZ front end and the reduced Huffman back
//! end, adds the paper's *dynamic Huffman skipping* (§V-B1: skip Huffman
//! for pages it would expand — worth ~5 % geomean ratio) and the optional
//! *1.1-Pass* approximate frequency counting (§V-B3: IBM's trick, supported
//! as a tunable but disabled by default because it hurts 4 KiB pages), and
//! produces self-describing [`CompressedPage`]s.
//!
//! [`SoftwareDeflate`] is the gzip stand-in used as the compression-ratio
//! yardstick in Fig. 15: a 32 KiB-window LZ plus a full 256-symbol
//! canonical Huffman coder, run over whole memory dumps so the window spans
//! pages.
//!
//! ## Scratch reuse and analytic sizing
//!
//! The hot entry points come in pairs: `compress_page` / `compressed_size`
//! allocate nothing visible but run on a per-thread [`DeflateScratch`];
//! the `*_with` variants take the scratch explicitly for callers that want
//! deterministic reuse. Size queries never materialize a bit stream — the
//! plain-format tree header is whole bytes (24 B reduced, 128 B full), so
//! `stored_len` is computable exactly from [`ReducedHuffman::encoded_bits`]
//! alone, which removes all Huffman bit-packing from ratio sweeps.

use std::cell::RefCell;

use crate::huffman::{FullHuffman, ReducedHuffman, DEFAULT_MAX_DEPTH};
use crate::lz::{LzCodec, LzScratch, LzStats};
use crate::timing::{DeflateTiming, TimingReport};
use tmcc_compression::{BitWriter, CodecError};
use tmcc_types::crc32;

/// How a page is stored (first byte of the serialized form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageMode {
    /// All-zero page: header only.
    Zero = 0,
    /// LZ + reduced Huffman (the common case).
    LzHuffman = 1,
    /// LZ only — Huffman dynamically skipped (§V-B1).
    LzOnly = 2,
    /// Stored raw — the page expanded under LZ too (incompressible).
    Raw = 3,
}

/// Reusable buffers for the page codec: the LZ hash-chain state plus the
/// intermediate LZ byte stream, shared by compression, decompression and
/// analytic sizing. One scratch per thread amortizes every per-page
/// allocation except the payload that escapes into [`CompressedPage`].
#[derive(Debug, Clone, Default)]
pub struct DeflateScratch {
    lz: LzScratch,
    lz_buf: Vec<u8>,
}

impl DeflateScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Per-thread scratch backing the allocation-free default entry points.
    static SCRATCH: RefCell<DeflateScratch> = RefCell::new(DeflateScratch::new());
}

/// A compressed page: mode header, original/LZ lengths and the payload.
///
/// `stored_len` is the size the page occupies in ML2 and what the capacity
/// accounting uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedPage {
    mode: PageMode,
    original_len: usize,
    lz_len: usize,
    payload: Vec<u8>,
    /// Exact payload length in bits — [`BitWriter::len_bits`] for Huffman
    /// payloads, which the final byte pads with up to 7 zero bits.
    payload_bits: usize,
    stats: LzStats,
}

impl CompressedPage {
    /// Bytes this page occupies when stored: payload plus a 3-byte header
    /// (mode + 16-bit LZ length).
    pub fn stored_len(&self) -> usize {
        match self.mode {
            PageMode::Zero => 1,
            _ => 3 + self.payload.len(),
        }
    }

    /// The storage mode.
    pub fn mode(&self) -> PageMode {
        self.mode
    }

    /// Length of the original page.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Length of the intermediate LZ stream (0 for zero pages).
    pub fn lz_len(&self) -> usize {
        self.lz_len
    }

    /// LZ token statistics (for the cycle model).
    pub fn lz_stats(&self) -> LzStats {
        self.stats
    }

    /// Compression ratio achieved for this page.
    pub fn ratio(&self) -> f64 {
        self.original_len as f64 / self.stored_len() as f64
    }

    /// Payload bits excluding headers — what the decompressor's input side
    /// must consume. Exact: Huffman payloads end mid-byte and the padding
    /// bits are *not* counted (they used to be, overstating Table II's
    /// decompression latency by up to 7 bit-times per page).
    pub fn payload_bits(&self) -> usize {
        self.payload_bits
    }

    /// The stored payload bytes (tree header + Huffman stream for
    /// [`PageMode::LzHuffman`], the LZ byte stream for
    /// [`PageMode::LzOnly`], the raw page for [`PageMode::Raw`]).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Reassembles a page from stored parts — used by differential tests
    /// that decode historically recorded streams with the current decoder.
    /// The bit length is taken as `payload.len() * 8` (stored streams do
    /// not record their padding).
    pub fn from_parts(
        mode: PageMode,
        original_len: usize,
        lz_len: usize,
        payload: Vec<u8>,
    ) -> Self {
        let payload_bits = payload.len() * 8;
        Self { mode, original_len, lz_len, payload, payload_bits, stats: LzStats::default() }
    }

    /// Returns a mutable view of the payload bytes — the bit-flip fault
    /// injector's way of corrupting a stored page in place.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.payload
    }

    /// The packed metadata tag the seal covers: mode, original/LZ lengths,
    /// exact payload bit count and the owning CTE's rank. 62 bits used.
    fn tag_word(&self, cte_rank: u8) -> u64 {
        (self.mode as u64)
            | (self.original_len as u64) << 2
            | (self.payload_bits as u64) << 18
            | (cte_rank as u64) << 38
            | (self.lz_len as u64) << 46
    }

    /// Seals the page: a CRC32 over the payload plus the metadata tag.
    /// `cte_rank` binds the seal to the translation entry that owns the
    /// page, so a page attached to the wrong CTE fails as metadata
    /// corruption rather than decoding garbage.
    pub fn seal(&self, cte_rank: u8) -> PageSeal {
        PageSeal { tag: self.tag_word(cte_rank), crc: crc32(&self.payload) }
    }

    /// Verifies a seal produced by [`seal`](Self::seal). Metadata (tag)
    /// disagreement is reported separately from payload (CRC) corruption —
    /// the recovery ladder accounts the two differently.
    pub fn verify_seal(&self, seal: &PageSeal, cte_rank: u8) -> Result<(), CodecError> {
        let computed = self.tag_word(cte_rank);
        if seal.tag != computed {
            return Err(CodecError::MetadataMismatch { stored: seal.tag, computed });
        }
        let crc = crc32(&self.payload);
        if seal.crc != crc {
            return Err(CodecError::ChecksumMismatch { stored: seal.crc, computed: crc });
        }
        Ok(())
    }
}

/// Integrity seal for one stored [`CompressedPage`]: a CRC32 over the
/// payload bytes and a packed copy of the metadata the decoder trusts
/// (mode, lengths, CTE rank). Stored alongside the page's translation
/// metadata, so payload corruption and metadata corruption are separately
/// detectable (paper-adjacent: the TMCC metadata cache already holds
/// per-page state; the seal rides in the same structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageSeal {
    tag: u64,
    crc: u32,
}

impl PageSeal {
    /// Modeled storage cost of a seal in ML2 metadata: 4 CRC bytes + 8 tag
    /// bytes.
    pub const STORED_BYTES: usize = 12;

    /// The stored CRC32.
    pub fn crc(&self) -> u32 {
        self.crc
    }

    /// The stored metadata tag word.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Flips one bit of the stored seal itself — fault injection on the
    /// metadata side.
    pub fn flip_bit(&mut self, bit: u32) {
        match bit % 96 {
            b @ 0..=31 => self.crc ^= 1 << b,
            b => self.tag ^= 1 << ((b - 32) % 64),
        }
    }
}

/// Configuration of the memory-specialized Deflate (the §V-B design space).
///
/// Use the builder-style setters; defaults are the paper's chosen design
/// point (1 KiB CAM, 16-leaf tree, depth 15, dynamic skip on, 1.1-Pass
/// off).
///
/// # Examples
///
/// ```
/// use tmcc_deflate::DeflateParams;
///
/// let params = DeflateParams::new().cam_bytes(512).max_tree_depth(8);
/// assert_eq!(params.cam(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeflateParams {
    cam_bytes: usize,
    max_tree_depth: u32,
    dynamic_skip: bool,
    one_one_pass: bool,
    /// Sample bytes for 1.1-Pass frequency counting.
    sample_bytes: usize,
}

impl DeflateParams {
    /// The paper's design point.
    pub fn new() -> Self {
        Self {
            cam_bytes: 1024,
            max_tree_depth: DEFAULT_MAX_DEPTH,
            dynamic_skip: true,
            one_one_pass: false,
            sample_bytes: 512,
        }
    }

    /// Sets the LZ sliding-window (CAM) size in bytes.
    pub fn cam_bytes(mut self, bytes: usize) -> Self {
        self.cam_bytes = bytes;
        self
    }

    /// Sets the reduced-tree depth threshold.
    pub fn max_tree_depth(mut self, depth: u32) -> Self {
        self.max_tree_depth = depth;
        self
    }

    /// Enables or disables dynamic Huffman skipping.
    pub fn dynamic_skip(mut self, on: bool) -> Self {
        self.dynamic_skip = on;
        self
    }

    /// Enables IBM-style 1.1-Pass approximate frequency counting with the
    /// given sample size (hurts ratio on 4 KiB pages; off by default).
    pub fn one_one_pass(mut self, on: bool, sample_bytes: usize) -> Self {
        self.one_one_pass = on;
        self.sample_bytes = sample_bytes;
        self
    }

    /// The configured CAM size.
    pub fn cam(&self) -> usize {
        self.cam_bytes
    }

    /// The configured depth threshold.
    pub fn depth(&self) -> u32 {
        self.max_tree_depth
    }

    /// Whether dynamic Huffman skipping is enabled.
    pub fn skip_enabled(&self) -> bool {
        self.dynamic_skip
    }
}

impl Default for DeflateParams {
    fn default() -> Self {
        Self::new()
    }
}

/// Analytic page-size breakdown from [`MemDeflate::size_quote`]: enough to
/// reproduce the mode decision and `stored_len` under either dynamic-skip
/// setting without materializing a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeQuote {
    original_len: usize,
    lz_len: usize,
    /// Reduced-tree payload size (24-byte header + payload bytes).
    huff_bytes: usize,
    zero: bool,
}

impl SizeQuote {
    /// Stored bytes for this page under the given dynamic-skip setting —
    /// identical to `compress_page(...).stored_len()` for a codec with the
    /// same LZ and tree parameters.
    pub fn stored_len(&self, dynamic_skip: bool) -> usize {
        if self.zero {
            return 1;
        }
        let payload_len = if dynamic_skip && self.huff_bytes >= self.lz_len {
            self.lz_len
        } else {
            self.huff_bytes
        };
        if payload_len + 3 >= self.original_len {
            self.original_len + 3
        } else {
            payload_len + 3
        }
    }

    /// Length of the intermediate LZ stream (0 for zero pages).
    pub fn lz_len(&self) -> usize {
        self.lz_len
    }

    /// Whether the page was all zeros.
    pub fn is_zero(&self) -> bool {
        self.zero
    }
}

/// Whether `page` is entirely zero, compared a word at a time.
#[inline]
fn is_zero_page(page: &[u8]) -> bool {
    let mut chunks = page.chunks_exact(8);
    for c in &mut chunks {
        if u64::from_le_bytes(c.try_into().expect("8 bytes")) != 0 {
            return false;
        }
    }
    chunks.remainder().iter().all(|&b| b == 0)
}

/// The memory-specialized ASIC Deflate codec (functional model).
///
/// # Examples
///
/// ```
/// use tmcc_deflate::MemDeflate;
///
/// let codec = MemDeflate::default();
/// let mut page = vec![0u8; 4096];
/// for (i, b) in page.iter_mut().enumerate() {
///     *b = [0u8, 0, 7, 42][i % 4];
/// }
/// let c = codec.compress_page(&page);
/// assert!(c.ratio() > 3.0);
/// assert_eq!(codec.decompress_page(&c), page);
/// ```
#[derive(Debug, Clone)]
pub struct MemDeflate {
    params: DeflateParams,
    lz: LzCodec,
    timing: DeflateTiming,
}

impl MemDeflate {
    /// Builds the codec from parameters.
    pub fn new(params: DeflateParams) -> Self {
        Self { params, lz: LzCodec::new(params.cam_bytes), timing: DeflateTiming::default() }
    }

    /// The configured parameters.
    pub fn params(&self) -> DeflateParams {
        self.params
    }

    /// The cycle model attached to this codec.
    pub fn timing(&self) -> &DeflateTiming {
        &self.timing
    }

    /// Compresses one page (any length up to 64 KiB; normally 4 KiB) on
    /// the thread-local scratch.
    ///
    /// # Panics
    ///
    /// Panics if `page` is empty or longer than 65 535 bytes (the 16-bit
    /// LZ-length header).
    pub fn compress_page(&self, page: &[u8]) -> CompressedPage {
        SCRATCH.with(|s| self.compress_page_with(page, &mut s.borrow_mut()))
    }

    /// [`compress_page`](Self::compress_page) reusing caller-owned scratch.
    ///
    /// # Panics
    ///
    /// Panics if `page` is empty or longer than 65 535 bytes.
    pub fn compress_page_with(&self, page: &[u8], scratch: &mut DeflateScratch) -> CompressedPage {
        assert!(!page.is_empty() && page.len() < 65536, "page length must be in 1..65536");
        if is_zero_page(page) {
            return CompressedPage {
                mode: PageMode::Zero,
                original_len: page.len(),
                lz_len: 0,
                payload: Vec::new(),
                payload_bits: 0,
                stats: LzStats::default(),
            };
        }
        let stats = self.lz.compress_with(page, &mut scratch.lz, &mut scratch.lz_buf);
        let lz_stream = &scratch.lz_buf[..];
        let (tree, huff_bits) = self.plan_huffman(lz_stream);
        let huff_bytes = ReducedHuffman::TREE_BYTES + huff_bits.div_ceil(8);

        let (mode, payload, payload_bits) =
            if self.params.dynamic_skip && huff_bytes >= lz_stream.len() {
                (PageMode::LzOnly, lz_stream.to_vec(), lz_stream.len() * 8)
            } else {
                let mut w = BitWriter::with_capacity(huff_bytes);
                tree.write_tree(&mut w);
                tree.encode_into(&mut w, lz_stream);
                let bits = w.len_bits();
                debug_assert_eq!(bits, ReducedHuffman::TREE_BYTES * 8 + huff_bits);
                (PageMode::LzHuffman, w.into_bytes(), bits)
            };
        if payload.len() + 3 >= page.len() {
            return CompressedPage {
                mode: PageMode::Raw,
                original_len: page.len(),
                lz_len: lz_stream.len(),
                payload: page.to_vec(),
                payload_bits: page.len() * 8,
                stats,
            };
        }
        CompressedPage {
            mode,
            original_len: page.len(),
            lz_len: lz_stream.len(),
            payload,
            payload_bits,
            stats,
        }
    }

    /// Builds the reduced tree for an LZ stream (full or 1.1-Pass sampled
    /// input) and returns it with the exact payload bit count.
    fn plan_huffman(&self, lz_stream: &[u8]) -> (ReducedHuffman, usize) {
        let tree_input = if self.params.one_one_pass {
            &lz_stream[..lz_stream.len().min(self.params.sample_bytes)]
        } else {
            lz_stream
        };
        let tree = ReducedHuffman::build(tree_input, self.params.max_tree_depth);
        let huff_bits = tree.encoded_bits(lz_stream);
        (tree, huff_bits)
    }

    /// Restores the original page on the thread-local scratch.
    ///
    /// # Panics
    ///
    /// Panics on pages not produced by this codec configuration.
    pub fn decompress_page(&self, page: &CompressedPage) -> Vec<u8> {
        SCRATCH.with(|s| {
            let mut out = Vec::new();
            self.decompress_page_into(page, &mut s.borrow_mut(), &mut out);
            out
        })
    }

    /// [`decompress_page`](Self::decompress_page) into a caller-owned
    /// buffer (cleared first), reusing `scratch` for the intermediate LZ
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics on pages not produced by this codec configuration (the
    /// [`try_decompress_page_into`](Self::try_decompress_page_into) error,
    /// formatted).
    pub fn decompress_page_into(
        &self,
        page: &CompressedPage,
        scratch: &mut DeflateScratch,
        out: &mut Vec<u8>,
    ) {
        if let Err(e) = self.try_decompress_page_into(page, scratch, out) {
            panic!("page decode failed: {e}");
        }
    }

    /// Fallible page decompression for untrusted (possibly bit-flipped)
    /// pages: every malformed-stream condition in the tree reader, Huffman
    /// decoder and LZ back end is an error value; output is bounded by the
    /// page's declared `original_len`; decoded output whose length
    /// disagrees with the declaration is itself an error. `out` may hold a
    /// partial prefix on error.
    pub fn try_decompress_page_into(
        &self,
        page: &CompressedPage,
        scratch: &mut DeflateScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        out.clear();
        match page.mode {
            PageMode::Zero => out.resize(page.original_len, 0),
            PageMode::Raw => {
                if page.payload.len() != page.original_len {
                    return Err(CodecError::LengthMismatch {
                        context: "raw page payload",
                        expected: page.original_len,
                        got: page.payload.len(),
                    });
                }
                out.extend_from_slice(&page.payload);
            }
            PageMode::LzOnly => {
                self.lz.try_decompress_into(&page.payload, out, page.original_len)?;
            }
            PageMode::LzHuffman => {
                let (tree, rest) = ReducedHuffman::try_read_tree(&page.payload)?;
                scratch.lz_buf.clear();
                let mut r = tmcc_compression::BitReader::new(rest);
                tree.try_decode_from_into(&mut r, page.lz_len, &mut scratch.lz_buf)?;
                self.lz.try_decompress_into(&scratch.lz_buf, out, page.original_len)?;
            }
        }
        if out.len() != page.original_len {
            return Err(CodecError::LengthMismatch {
                context: "decoded page length",
                expected: page.original_len,
                got: out.len(),
            });
        }
        Ok(())
    }

    /// Sealed decode: verifies the integrity seal (metadata tag first,
    /// then payload CRC) before running the fallible decoder — the
    /// end-to-end entry point of the detect/recover/poison ladder.
    pub fn try_decompress_sealed(
        &self,
        page: &CompressedPage,
        seal: &PageSeal,
        cte_rank: u8,
        scratch: &mut DeflateScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        page.verify_seal(seal, cte_rank)?;
        self.try_decompress_page_into(page, scratch, out)
    }

    /// Compressed size of a page without materializing the payload —
    /// the capacity-accounting fast path. Exact: the Huffman payload is
    /// `24 + ceil(bits / 8)` bytes because the plain-format tree header is
    /// whole bytes, so no bit stream needs to be written to know
    /// `stored_len`.
    pub fn compressed_size(&self, page: &[u8]) -> usize {
        SCRATCH.with(|s| self.compressed_size_with(page, &mut s.borrow_mut()))
    }

    /// [`compressed_size`](Self::compressed_size) reusing caller-owned
    /// scratch.
    ///
    /// # Panics
    ///
    /// Panics if `page` is empty or longer than 65 535 bytes.
    pub fn compressed_size_with(&self, page: &[u8], scratch: &mut DeflateScratch) -> usize {
        self.size_quote_with(page, scratch).stored_len(self.params.dynamic_skip)
    }

    /// Analytic sizing pass on the thread-local scratch: one LZ + tree
    /// build prices the page under *both* dynamic-skip settings, so
    /// sweeps comparing the two (Fig. 15) pay for compression once.
    pub fn size_quote(&self, page: &[u8]) -> SizeQuote {
        SCRATCH.with(|s| self.size_quote_with(page, &mut s.borrow_mut()))
    }

    /// [`size_quote`](Self::size_quote) reusing caller-owned scratch.
    ///
    /// # Panics
    ///
    /// Panics if `page` is empty or longer than 65 535 bytes.
    pub fn size_quote_with(&self, page: &[u8], scratch: &mut DeflateScratch) -> SizeQuote {
        assert!(!page.is_empty() && page.len() < 65536, "page length must be in 1..65536");
        if is_zero_page(page) {
            return SizeQuote { original_len: page.len(), lz_len: 0, huff_bytes: 0, zero: true };
        }
        self.lz.compress_with(page, &mut scratch.lz, &mut scratch.lz_buf);
        let lz_stream = &scratch.lz_buf[..];
        let (_, huff_bits) = self.plan_huffman(lz_stream);
        let huff_bytes = ReducedHuffman::TREE_BYTES + huff_bits.div_ceil(8);
        SizeQuote { original_len: page.len(), lz_len: lz_stream.len(), huff_bytes, zero: false }
    }

    /// Modelled latency to compress this page.
    pub fn compress_latency(&self, page: &CompressedPage) -> TimingReport {
        self.timing.compress_latency(
            page.original_len,
            page.stats,
            page.lz_len,
            page.payload_bits(),
        )
    }

    /// Modelled latency to decompress the full page.
    pub fn decompress_latency(&self, page: &CompressedPage) -> TimingReport {
        self.timing.decompress_latency(page.payload_bits(), page.original_len)
    }

    /// Modelled average latency until a needed block is available.
    pub fn needed_block_latency(&self, page: &CompressedPage) -> TimingReport {
        self.timing.half_page_latency(page.payload_bits(), page.original_len)
    }
}

impl Default for MemDeflate {
    fn default() -> Self {
        Self::new(DeflateParams::new())
    }
}

/// The gzip stand-in: 32 KiB-window LZ + full canonical Huffman, applied to
/// arbitrary-length streams (whole memory dumps).
#[derive(Debug, Clone)]
pub struct SoftwareDeflate {
    lz: LzCodec,
}

impl SoftwareDeflate {
    /// Creates the reference codec.
    pub fn new() -> Self {
        Self { lz: LzCodec::new(32768) }
    }

    /// Compresses a stream on the thread-local scratch; returns the stored
    /// bytes (`[u32 original_len][u32 lz_len][flag][stream]`).
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        SCRATCH.with(|s| self.compress_with(data, &mut s.borrow_mut()))
    }

    /// [`compress`](Self::compress) reusing caller-owned scratch.
    pub fn compress_with(&self, data: &[u8], scratch: &mut DeflateScratch) -> Vec<u8> {
        self.lz.compress_with(data, &mut scratch.lz, &mut scratch.lz_buf);
        let lz_stream = &scratch.lz_buf[..];
        let tree = FullHuffman::build(lz_stream);
        let encoded_len = FullHuffman::TREE_BYTES + tree.encoded_bits(lz_stream).div_ceil(8);
        // Keep whichever of (huffman, raw lz) is smaller, flagged by a
        // byte; only the winning branch is ever bit-packed.
        let huffman_wins = encoded_len < lz_stream.len();
        let body_len = if huffman_wins { encoded_len } else { lz_stream.len() };
        let mut out = Vec::with_capacity(9 + body_len);
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        out.extend_from_slice(&(lz_stream.len() as u32).to_le_bytes());
        if huffman_wins {
            out.push(1);
            out.extend_from_slice(&tree.encode(lz_stream));
        } else {
            out.push(0);
            out.extend_from_slice(lz_stream);
        }
        out
    }

    /// Restores the original stream.
    ///
    /// # Panics
    ///
    /// Panics on malformed input (the
    /// [`try_decompress`](Self::try_decompress) error, formatted).
    pub fn decompress(&self, data: &[u8]) -> Vec<u8> {
        match self.try_decompress(data) {
            Ok(out) => out,
            Err(e) => panic!("software deflate decode failed: {e}"),
        }
    }

    /// Fallible decompression for untrusted streams: short headers,
    /// truncated bodies and length contradictions are error values, and
    /// output is bounded by the header's declared length.
    pub fn try_decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        const HDR: &str = "software deflate header";
        let original_len = u32::from_le_bytes(
            data.get(..4).ok_or(CodecError::UnexpectedEnd { context: HDR })?.try_into().expect("4"),
        ) as usize;
        let lz_len = u32::from_le_bytes(
            data.get(4..8)
                .ok_or(CodecError::UnexpectedEnd { context: HDR })?
                .try_into()
                .expect("4"),
        ) as usize;
        let &flag = data.get(8).ok_or(CodecError::UnexpectedEnd { context: HDR })?;
        let lz_stream = match flag {
            1 => crate::huffman::FullHuffman::try_decode(&data[9..], lz_len)?,
            _ => data
                .get(9..9 + lz_len)
                .ok_or(CodecError::UnexpectedEnd { context: "software deflate LZ body" })?
                .to_vec(),
        };
        let mut out = Vec::new();
        self.lz.try_decompress_into(&lz_stream, &mut out, original_len)?;
        if out.len() != original_len {
            return Err(CodecError::LengthMismatch {
                context: "software deflate output",
                expected: original_len,
                got: out.len(),
            });
        }
        Ok(out)
    }

    /// Compressed size of `data` under the reference codec, computed
    /// analytically — no bit stream is materialized.
    pub fn compressed_size(&self, data: &[u8]) -> usize {
        SCRATCH.with(|s| self.compressed_size_with(data, &mut s.borrow_mut()))
    }

    /// [`compressed_size`](Self::compressed_size) reusing caller-owned
    /// scratch.
    pub fn compressed_size_with(&self, data: &[u8], scratch: &mut DeflateScratch) -> usize {
        self.lz.compress_with(data, &mut scratch.lz, &mut scratch.lz_buf);
        let lz_stream = &scratch.lz_buf[..];
        let tree = FullHuffman::build(lz_stream);
        let encoded_len = FullHuffman::TREE_BYTES + tree.encoded_bits(lz_stream).div_ceil(8);
        9 + encoded_len.min(lz_stream.len())
    }
}

impl Default for SoftwareDeflate {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    fn textish_page() -> Vec<u8> {
        b"key=value; next=0x7fffaa00; flags=rw-; count=0001732; "
            .iter()
            .copied()
            .cycle()
            .take(PAGE_SIZE)
            .collect()
    }

    #[test]
    fn zero_page_is_one_byte() {
        let codec = MemDeflate::default();
        let page = vec![0u8; PAGE_SIZE];
        let c = codec.compress_page(&page);
        assert_eq!(c.mode(), PageMode::Zero);
        assert_eq!(c.stored_len(), 1);
        assert_eq!(c.payload_bits(), 0);
        assert_eq!(codec.decompress_page(&c), page);
    }

    #[test]
    fn near_zero_pages_are_not_zero_pages() {
        // Word-at-a-time scan must catch a lone set bit anywhere,
        // including the non-multiple-of-8 tail.
        let codec = MemDeflate::default();
        for (len, hot) in [(PAGE_SIZE, 0), (PAGE_SIZE, 4095), (4093, 4092), (7, 6)] {
            let mut page = vec![0u8; len];
            page[hot] = 1;
            let c = codec.compress_page(&page);
            assert_ne!(c.mode(), PageMode::Zero, "len {len} hot {hot}");
            assert_eq!(codec.decompress_page(&c), page);
        }
    }

    #[test]
    fn text_page_round_trips_with_good_ratio() {
        let codec = MemDeflate::default();
        let page = textish_page();
        let c = codec.compress_page(&page);
        assert_eq!(c.mode(), PageMode::LzHuffman);
        assert!(c.ratio() > 4.0, "ratio {}", c.ratio());
        assert_eq!(codec.decompress_page(&c), page);
    }

    #[test]
    fn random_page_stored_raw() {
        let codec = MemDeflate::default();
        let mut page = vec![0u8; PAGE_SIZE];
        let mut x = 0x12345678u64;
        for b in page.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (x >> 33) as u8;
        }
        let c = codec.compress_page(&page);
        assert_eq!(c.mode(), PageMode::Raw);
        assert_eq!(c.stored_len(), PAGE_SIZE + 3);
        assert_eq!(codec.decompress_page(&c), page);
    }

    #[test]
    fn dynamic_skip_prefers_lz_only_when_huffman_expands() {
        // LZ output with ~uniform byte distribution makes the reduced tree
        // useless; with skipping on we must not pay for it.
        let mut page = vec![0u8; PAGE_SIZE];
        for (i, b) in page.iter_mut().enumerate() {
            *b = ((i * 37) % 251) as u8;
        }
        // Duplicate the first half into the second so LZ itself wins.
        let half: Vec<u8> = page[..PAGE_SIZE / 2].to_vec();
        page[PAGE_SIZE / 2..].copy_from_slice(&half);
        let with_skip = MemDeflate::new(DeflateParams::new().dynamic_skip(true));
        let without = MemDeflate::new(DeflateParams::new().dynamic_skip(false));
        let a = with_skip.compress_page(&page);
        let b = without.compress_page(&page);
        assert!(a.stored_len() <= b.stored_len());
        assert_eq!(with_skip.decompress_page(&a), page);
        assert_eq!(without.decompress_page(&b), page);
    }

    #[test]
    fn one_one_pass_never_breaks_round_trip() {
        let codec = MemDeflate::new(DeflateParams::new().one_one_pass(true, 512));
        let page = textish_page();
        let c = codec.compress_page(&page);
        assert_eq!(codec.decompress_page(&c), page);
    }

    #[test]
    fn small_cam_round_trips() {
        for cam in [256, 512, 2048, 4096] {
            let codec = MemDeflate::new(DeflateParams::new().cam_bytes(cam));
            let page = textish_page();
            let c = codec.compress_page(&page);
            assert_eq!(codec.decompress_page(&c), page, "cam {cam}");
        }
    }

    /// Regression for the padded-bit over-count: `payload_bits` must be
    /// the writer's exact bit length, not `payload.len() * 8`.
    #[test]
    fn payload_bits_counts_exact_bits_not_padded_bytes() {
        let codec = MemDeflate::default();
        let page = textish_page();
        let c = codec.compress_page(&page);
        assert_eq!(c.mode(), PageMode::LzHuffman);
        // Recompute the exact count from the stored stream itself.
        let (tree, rest) = ReducedHuffman::read_tree(c.payload());
        let lz_stream = tree.decode(rest, c.lz_len());
        let exact = ReducedHuffman::TREE_BYTES * 8 + tree.encoded_bits(&lz_stream);
        assert_eq!(c.payload_bits(), exact);
        assert_eq!(c.payload().len(), exact.div_ceil(8));
        // This page genuinely ends mid-byte, so the old accounting
        // (payload.len() * 8) would differ.
        assert_ne!(exact % 8, 0, "need a padding-sensitive page");
        assert!(c.payload_bits() < c.payload().len() * 8);
    }

    #[test]
    fn payload_bits_is_exact_for_every_mode() {
        // LzOnly and Raw payloads are byte streams: bits == len * 8.
        // A page cycling through 251 values LZ-compresses well but leaves
        // a near-uniform LZ stream; with a depth-4 tree every cold byte
        // costs 12 bits, so Huffman must expand and dynamic skip kicks in.
        let codec = MemDeflate::new(DeflateParams::new().max_tree_depth(4));
        let uniform: Vec<u8> = (0..PAGE_SIZE).map(|i| ((i * 37) % 251) as u8).collect();
        let c = codec.compress_page(&uniform);
        assert_eq!(c.mode(), PageMode::LzOnly);
        assert_eq!(c.payload_bits(), c.payload().len() * 8);
        assert_eq!(codec.decompress_page(&c), uniform);

        let codec = MemDeflate::default();

        let mut x = 9u64;
        let random: Vec<u8> = (0..PAGE_SIZE)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let c = codec.compress_page(&random);
        assert_eq!(c.mode(), PageMode::Raw);
        assert_eq!(c.payload_bits(), PAGE_SIZE * 8);
    }

    #[test]
    fn analytic_sizes_match_materialized_payloads() {
        // compressed_size must agree with compress_page().stored_len() on
        // every mode, including the 1.1-Pass and no-skip configurations.
        let mut pages: Vec<Vec<u8>> = vec![vec![0u8; PAGE_SIZE], textish_page()];
        let mut uniform = vec![0u8; PAGE_SIZE];
        for (i, b) in uniform.iter_mut().enumerate() {
            *b = ((i * 37) % 251) as u8;
        }
        let half: Vec<u8> = uniform[..PAGE_SIZE / 2].to_vec();
        uniform[PAGE_SIZE / 2..].copy_from_slice(&half);
        pages.push(uniform);
        let mut x = 77u64;
        pages.push(
            (0..PAGE_SIZE)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (x >> 33) as u8
                })
                .collect(),
        );
        for params in [
            DeflateParams::new(),
            DeflateParams::new().dynamic_skip(false),
            DeflateParams::new().one_one_pass(true, 512),
            DeflateParams::new().cam_bytes(256).max_tree_depth(8),
        ] {
            let codec = MemDeflate::new(params);
            for page in &pages {
                assert_eq!(
                    codec.compressed_size(page),
                    codec.compress_page(page).stored_len(),
                    "params {params:?}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_state() {
        let codec = MemDeflate::default();
        let mut scratch = DeflateScratch::new();
        let pages = [textish_page(), vec![0u8; PAGE_SIZE], textish_page()];
        for page in &pages {
            let reused = codec.compress_page_with(page, &mut scratch);
            let fresh = codec.compress_page_with(page, &mut DeflateScratch::new());
            assert_eq!(reused, fresh);
            let mut out = Vec::new();
            codec.decompress_page_into(&reused, &mut scratch, &mut out);
            assert_eq!(&out, page);
        }
    }

    #[test]
    fn latency_model_attached() {
        let codec = MemDeflate::default();
        let c = codec.compress_page(&textish_page());
        let d = codec.decompress_latency(&c);
        let h = codec.needed_block_latency(&c);
        assert!(d.ns > 100.0 && d.ns < 400.0, "{d:?}");
        assert!(h.ns < d.ns);
    }

    #[test]
    fn software_deflate_round_trips_multi_page() {
        let sw = SoftwareDeflate::new();
        let mut dump = Vec::new();
        for _ in 0..4 {
            dump.extend_from_slice(&textish_page());
        }
        let c = sw.compress(&dump);
        assert!(c.len() < dump.len() / 4);
        assert_eq!(sw.decompress(&c), dump);
    }

    #[test]
    fn software_analytic_size_matches_compress() {
        let sw = SoftwareDeflate::new();
        let mut dump = Vec::new();
        for _ in 0..3 {
            dump.extend_from_slice(&textish_page());
        }
        assert_eq!(sw.compressed_size(&dump), sw.compress(&dump).len());
        // A stream whose LZ output defeats Huffman takes the flag-0 branch.
        let mut x = 3u64;
        let noisy: Vec<u8> = (0..8192)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        assert_eq!(sw.compressed_size(&noisy), sw.compress(&noisy).len());
        assert_eq!(sw.decompress(&sw.compress(&noisy)), noisy);
        // Empty input keeps its 9-byte header form.
        assert_eq!(sw.compressed_size(&[]), sw.compress(&[]).len());
        assert!(sw.decompress(&sw.compress(&[])).is_empty());
    }

    #[test]
    fn software_beats_or_matches_mem_deflate_on_dumps() {
        // The gzip stand-in (32 KiB window, full tree, cross-page) should
        // compress a multi-page dump at least as well as per-page
        // memory-specialized deflate — the Fig. 15 relationship.
        let sw = SoftwareDeflate::new();
        let mem = MemDeflate::default();
        let mut dump = Vec::new();
        for k in 0..8u8 {
            let mut p = textish_page();
            for b in p.iter_mut().step_by(97) {
                *b = b.wrapping_add(k);
            }
            dump.extend_from_slice(&p);
        }
        let sw_size = sw.compressed_size(&dump);
        let mem_size: usize = dump.chunks_exact(PAGE_SIZE).map(|p| mem.compressed_size(p)).sum();
        assert!(sw_size <= mem_size, "sw {sw_size} vs mem {mem_size}");
    }

    #[test]
    #[should_panic(expected = "page length must be in 1..65536")]
    fn rejects_empty_page() {
        let _ = MemDeflate::default().compress_page(&[]);
    }

    #[test]
    fn seal_round_trips_and_detects_payload_flips() {
        let codec = MemDeflate::default();
        let page = textish_page();
        let mut c = codec.compress_page(&page);
        let seal = c.seal(3);
        c.verify_seal(&seal, 3).expect("clean page verifies");
        // Any single payload bit flip fails the CRC, payload-classified.
        for bit in [0usize, 7, 100, c.payload().len() * 8 - 1] {
            c.payload_mut()[bit / 8] ^= 1 << (bit % 8);
            let err = c.verify_seal(&seal, 3).unwrap_err();
            assert!(matches!(err, CodecError::ChecksumMismatch { .. }), "bit {bit}: {err}");
            assert!(!err.is_metadata());
            c.payload_mut()[bit / 8] ^= 1 << (bit % 8); // restore
        }
        c.verify_seal(&seal, 3).expect("restored page verifies");
        // A wrong CTE rank is metadata corruption, not payload corruption.
        let err = c.verify_seal(&seal, 4).unwrap_err();
        assert!(err.is_metadata(), "{err}");
        // So is a flipped bit of the stored seal itself.
        let mut bad_seal = seal;
        bad_seal.flip_bit(40);
        assert!(c.verify_seal(&bad_seal, 3).unwrap_err().is_metadata());
        let mut bad_crc = seal;
        bad_crc.flip_bit(5);
        assert!(matches!(c.verify_seal(&bad_crc, 3), Err(CodecError::ChecksumMismatch { .. })));
    }

    #[test]
    fn sealed_decode_runs_the_full_ladder() {
        let codec = MemDeflate::default();
        let page = textish_page();
        let c = codec.compress_page(&page);
        let seal = c.seal(0);
        let mut scratch = DeflateScratch::new();
        let mut out = Vec::new();
        codec.try_decompress_sealed(&c, &seal, 0, &mut scratch, &mut out).unwrap();
        assert_eq!(out, page);
        // A corrupted payload is caught by the seal before the decoder runs.
        let mut bad = c.clone();
        bad.payload_mut()[10] ^= 0x20;
        let err = codec.try_decompress_sealed(&bad, &seal, 0, &mut scratch, &mut out).unwrap_err();
        assert!(matches!(err, CodecError::ChecksumMismatch { .. }));
    }

    #[test]
    fn corrupt_pages_decode_to_typed_errors_not_panics() {
        let codec = MemDeflate::default();
        let page = textish_page();
        let c = codec.compress_page(&page);
        assert_eq!(c.mode(), PageMode::LzHuffman);
        let mut scratch = DeflateScratch::new();
        let mut out = Vec::new();
        // Flip every bit of the payload in turn: each decode must return
        // Ok (undetected but bounded) or Err — never panic. This is the
        // in-crate smoke version of the dedicated corruption proptests.
        let mut bad = c.clone();
        let bits = bad.payload().len() * 8;
        let mut errors = 0usize;
        for bit in (0..bits).step_by(97) {
            bad.payload_mut()[bit / 8] ^= 1 << (bit % 8);
            match codec.try_decompress_page_into(&bad, &mut scratch, &mut out) {
                Ok(()) => assert_eq!(out.len(), c.original_len()),
                Err(_) => errors += 1,
            }
            assert!(out.len() <= c.original_len());
            bad.payload_mut()[bit / 8] ^= 1 << (bit % 8);
        }
        assert!(errors > 0, "some flips must be structurally detectable");
        // Truncated raw page: typed length mismatch.
        let raw = CompressedPage::from_parts(PageMode::Raw, PAGE_SIZE, 0, vec![1u8; 100]);
        assert_eq!(
            codec.try_decompress_page_into(&raw, &mut scratch, &mut out),
            Err(CodecError::LengthMismatch {
                context: "raw page payload",
                expected: PAGE_SIZE,
                got: 100
            })
        );
    }

    #[test]
    fn software_deflate_rejects_corrupt_streams() {
        let sw = SoftwareDeflate::new();
        assert_eq!(
            sw.try_decompress(&[1, 2, 3]),
            Err(CodecError::UnexpectedEnd { context: "software deflate header" })
        );
        let good = sw.compress(&textish_page());
        assert_eq!(sw.try_decompress(&good).unwrap(), textish_page());
        // Truncating the body is detected, never a panic.
        assert!(sw.try_decompress(&good[..good.len() - 3]).is_err());
        // Inflating the declared original_len is a typed error.
        let mut bad = good.clone();
        bad[0] ^= 0x80;
        assert!(sw.try_decompress(&bad).is_err());
    }
}
