//! Area/power model of the synthesized ASIC (paper Table I, §V-B2).
//!
//! The paper synthesizes on a 7 nm ASAP PDK at 0.7 V with Synopsys DC. We
//! cannot run a synthesis flow, so Table I's numbers are **model constants**
//! taken from the paper, with scaling rules the paper itself reports:
//!
//! * LZ area is dominated by the sliding-window CAM and scales linearly
//!   with CAM size (§V-B2: a 4 KiB CAM costs 0.24 / 0.09 mm², the chosen
//!   1 KiB CAM costs 0.060 / 0.022 mm² — exactly 4×);
//! * Huffman area scales with the number of tree leaves (the reduced
//!   16-leaf tree is what makes the Huffman modules small).
//!
//! This model exists so the design-space-exploration example can show the
//! area side of the CAM-size / code-count trade-offs the paper explored.

/// Area and power of one module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleArea {
    /// Silicon area in mm² (7 nm ASAP, 0.7 V).
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// The Table I area/power model, parameterizable for the DSE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    cam_bytes: usize,
    huffman_codes: usize,
}

/// Reference design point of Table I.
const REF_CAM_BYTES: usize = 1024;
const REF_HUFFMAN_CODES: usize = 16;
/// Table I constants at the reference point.
const LZ_DECOMP: ModuleArea = ModuleArea { area_mm2: 0.022, power_mw: 100.0 };
const LZ_COMP: ModuleArea = ModuleArea { area_mm2: 0.060, power_mw: 160.0 };
const HUFF_DECOMP: ModuleArea = ModuleArea { area_mm2: 0.014, power_mw: 27.0 };
const HUFF_COMP: ModuleArea = ModuleArea { area_mm2: 0.034, power_mw: 160.0 };

impl AreaModel {
    /// The synthesized design point of Table I (1 KiB CAM, 16 codes).
    pub fn paper_default() -> Self {
        Self { cam_bytes: REF_CAM_BYTES, huffman_codes: REF_HUFFMAN_CODES }
    }

    /// A hypothetical design point for design-space exploration.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn with_params(cam_bytes: usize, huffman_codes: usize) -> Self {
        assert!(cam_bytes > 0 && huffman_codes > 0, "parameters must be nonzero");
        Self { cam_bytes, huffman_codes }
    }

    fn scale_lz(&self, m: ModuleArea) -> ModuleArea {
        let s = self.cam_bytes as f64 / REF_CAM_BYTES as f64;
        ModuleArea { area_mm2: m.area_mm2 * s, power_mw: m.power_mw * s }
    }

    fn scale_huff(&self, m: ModuleArea) -> ModuleArea {
        let s = self.huffman_codes as f64 / REF_HUFFMAN_CODES as f64;
        ModuleArea { area_mm2: m.area_mm2 * s, power_mw: m.power_mw * s }
    }

    /// LZ decompressor area/power.
    pub fn lz_decompressor(&self) -> ModuleArea {
        self.scale_lz(LZ_DECOMP)
    }

    /// LZ compressor area/power.
    pub fn lz_compressor(&self) -> ModuleArea {
        self.scale_lz(LZ_COMP)
    }

    /// Huffman decompressor area/power.
    pub fn huffman_decompressor(&self) -> ModuleArea {
        self.scale_huff(HUFF_DECOMP)
    }

    /// Huffman compressor area/power.
    pub fn huffman_compressor(&self) -> ModuleArea {
        self.scale_huff(HUFF_COMP)
    }

    /// Complete unit totals (Table I bottom row).
    pub fn complete_unit(&self) -> ModuleArea {
        let parts = [
            self.lz_decompressor(),
            self.lz_compressor(),
            self.huffman_decompressor(),
            self.huffman_compressor(),
        ];
        ModuleArea {
            area_mm2: parts.iter().map(|p| p.area_mm2).sum(),
            power_mw: parts.iter().map(|p| p.power_mw).sum(),
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_total() {
        let total = AreaModel::paper_default().complete_unit();
        assert!((total.area_mm2 - 0.13).abs() < 0.005, "{}", total.area_mm2);
        assert!((total.power_mw - 447.0).abs() < 1.0, "{}", total.power_mw);
    }

    #[test]
    fn four_kib_cam_matches_section_vb2() {
        // §V-B2: IBM-style 4 KiB CAM => 0.24 mm² compressor, 0.09 decompressor.
        let m = AreaModel::with_params(4096, 16);
        assert!((m.lz_compressor().area_mm2 - 0.24).abs() < 0.01);
        assert!((m.lz_decompressor().area_mm2 - 0.088).abs() < 0.01);
    }

    #[test]
    fn smaller_cam_is_smaller() {
        let small = AreaModel::with_params(256, 16).complete_unit().area_mm2;
        let big = AreaModel::with_params(4096, 16).complete_unit().area_mm2;
        assert!(small < big);
    }
}
