//! Huffman coding: the memory-specialized *reduced* tree and a standard
//! full tree.
//!
//! [`ReducedHuffman`] implements the paper's key Huffman specialization
//! (§V-B1): instead of RFC 1951's two canonical trees plus a third tree
//! compressing those trees, it uses a **single 16-leaf tree** — the 15
//! hottest byte values of the page plus one *escape* leaf. Bytes outside the
//! tree are coded as `escape-code + 8 raw bits`. The tree is written to the
//! output **uncompressed** (16 × 12-bit entries), so the decompressor sets
//! up in 16 cycles instead of the > 500 ns canonical-tree reconstruction of
//! IBM's design.
//!
//! [`FullHuffman`] is a conventional 256-symbol length-limited canonical
//! Huffman coder. It serves as this reproduction's *software Deflate*
//! backend (the gzip stand-in of Fig. 15) and as the DSE reference for "what
//! a bigger tree would buy".

use crate::PAGE_SIZE;
use tmcc_compression::{BitReader, BitWriter};

/// Number of leaves in the reduced tree (15 hot symbols + escape).
pub const REDUCED_LEAVES: usize = 16;
/// Default depth threshold for the reduced tree (paper: tunable; must fit
/// the 4-bit length field, and 15 also bounds a 16-leaf tree).
pub const DEFAULT_MAX_DEPTH: u32 = 15;

/// Builds Huffman code lengths for `freqs` (0-frequency symbols get no
/// code). Returns per-symbol code lengths.
fn huffman_lengths(freqs: &[u64]) -> Vec<u32> {
    #[derive(Clone)]
    struct Node {
        freq: u64,
        syms: Vec<usize>,
    }
    let mut lengths = vec![0u32; freqs.len()];
    let mut nodes: Vec<Node> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, &f)| Node { freq: f, syms: vec![i] })
        .collect();
    if nodes.is_empty() {
        return lengths;
    }
    if nodes.len() == 1 {
        lengths[nodes[0].syms[0]] = 1;
        return lengths;
    }
    while nodes.len() > 1 {
        // Pick the two lowest-frequency nodes (stable order for determinism).
        nodes.sort_by_key(|n| std::cmp::Reverse(n.freq));
        let a = nodes.pop().expect("two nodes remain");
        let b = nodes.pop().expect("two nodes remain");
        for &s in a.syms.iter().chain(b.syms.iter()) {
            lengths[s] += 1;
        }
        let mut syms = a.syms;
        syms.extend(b.syms);
        nodes.push(Node { freq: a.freq + b.freq, syms });
    }
    lengths
}

/// Limits code lengths to `max_depth` by repeatedly flattening the
/// frequency distribution and rebuilding — the standard zlib-style trick.
fn limited_lengths(freqs: &[u64], max_depth: u32) -> Vec<u32> {
    let mut f: Vec<u64> = freqs.to_vec();
    loop {
        let lengths = huffman_lengths(&f);
        if lengths.iter().all(|&l| l <= max_depth) {
            return lengths;
        }
        for v in f.iter_mut() {
            if *v > 0 {
                *v = v.div_ceil(2) + 1;
            }
        }
    }
}

/// Assigns canonical codes (shorter codes first; ties broken by symbol
/// index). Returns `(code, length)` per symbol.
fn canonical_codes(lengths: &[u32]) -> Vec<(u32, u32)> {
    let mut order: Vec<usize> = (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
    order.sort_by_key(|&i| (lengths[i], i));
    let mut codes = vec![(0u32, 0u32); lengths.len()];
    let mut code = 0u32;
    let mut prev_len = 0u32;
    for &i in &order {
        let len = lengths[i];
        code <<= len - prev_len;
        codes[i] = (code, len);
        code += 1;
        prev_len = len;
    }
    codes
}

/// The reduced 16-leaf Huffman coder (paper §V-B1).
///
/// A `ReducedHuffman` value is the *tree*: build one per page with
/// [`ReducedHuffman::build`], or recover it from a compressed stream with
/// [`ReducedHuffman::read_tree`].
///
/// # Examples
///
/// ```
/// use tmcc_deflate::ReducedHuffman;
///
/// let data = b"aaaaaabbbbccdde".repeat(20);
/// let tree = ReducedHuffman::build(&data, 15);
/// let encoded = tree.encode(&data);
/// let (tree2, rest) = ReducedHuffman::read_tree(&encoded);
/// assert_eq!(tree2.decode(rest, data.len()), data);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReducedHuffman {
    /// The 15 in-tree symbols, hottest first. May be shorter if the page
    /// has fewer distinct bytes.
    hot: Vec<u8>,
    /// Code lengths: `lengths[i]` for `hot[i]`, last entry for escape.
    lengths: Vec<u32>,
    /// Canonical codes matching `lengths`.
    codes: Vec<(u32, u32)>,
}

impl ReducedHuffman {
    /// Serialized tree size in bytes: 16 entries × (8-bit symbol + 4-bit
    /// length) = 24 bytes, written uncompressed (§V-B1: "our compressor
    /// outputs the tree in a plain format").
    pub const TREE_BYTES: usize = 24;

    /// Counts byte frequencies and builds the reduced tree: the 15 hottest
    /// characters plus an escape leaf whose frequency is the sum of all
    /// remaining characters. `max_depth` bounds the tree depth (the
    /// `Build Reduced Tree` depth threshold of §V-B4); the escape leaf is
    /// never discarded.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is 0 or exceeds 15 (the 4-bit length field).
    pub fn build(data: &[u8], max_depth: u32) -> Self {
        assert!((1..=15).contains(&max_depth), "depth must be in 1..=15");
        let mut freqs = [0u64; 256];
        for &b in data {
            freqs[b as usize] += 1;
        }
        let mut by_freq: Vec<usize> = (0..256).filter(|&i| freqs[i] > 0).collect();
        by_freq.sort_by_key(|&i| (std::cmp::Reverse(freqs[i]), i));
        let hot: Vec<u8> = by_freq.iter().take(REDUCED_LEAVES - 1).map(|&i| i as u8).collect();
        let escape_freq: u64 = by_freq.iter().skip(REDUCED_LEAVES - 1).map(|&i| freqs[i]).sum();
        let mut tree_freqs: Vec<u64> = hot.iter().map(|&b| freqs[b as usize]).collect();
        // The escape leaf always exists (paper: never discarded), even if
        // the page currently has no cold characters.
        tree_freqs.push(escape_freq.max(1));
        let lengths = limited_lengths(&tree_freqs, max_depth);
        let codes = canonical_codes(&lengths);
        Self { hot, lengths, codes }
    }

    /// The in-tree symbols, hottest first.
    pub fn hot_symbols(&self) -> &[u8] {
        &self.hot
    }

    /// Index of the escape leaf in the length/code tables.
    fn escape_idx(&self) -> usize {
        self.lengths.len() - 1
    }

    /// Maximum code length in this tree.
    pub fn depth(&self) -> u32 {
        self.lengths.iter().copied().max().unwrap_or(0)
    }

    /// Encodes `data`, prefixing the uncompressed tree (24 bytes).
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut w = BitWriter::new();
        self.write_tree(&mut w);
        self.encode_into(&mut w, data);
        w.into_bytes()
    }

    /// Encodes `data` into an existing bit stream without the tree header.
    pub fn encode_into(&self, w: &mut BitWriter, data: &[u8]) {
        // Symbol -> tree slot lookup.
        let mut slot = [usize::MAX; 256];
        for (i, &b) in self.hot.iter().enumerate() {
            slot[b as usize] = i;
        }
        let (esc_code, esc_len) = self.codes[self.escape_idx()];
        for &b in data {
            let s = slot[b as usize];
            if s != usize::MAX {
                let (code, len) = self.codes[s];
                w.put(code as u64, len);
            } else {
                w.put(esc_code as u64, esc_len);
                w.put(b as u64, 8);
            }
        }
    }

    /// Size in bits `data` would occupy under this tree, without header —
    /// used by the dynamic-skip decision (§V-B1).
    pub fn encoded_bits(&self, data: &[u8]) -> usize {
        let mut slot_len = [0u32; 256];
        let (_, esc_len) = self.codes[self.escape_idx()];
        for l in slot_len.iter_mut() {
            *l = esc_len + 8;
        }
        for (i, &b) in self.hot.iter().enumerate() {
            slot_len[b as usize] = self.codes[i].1;
        }
        data.iter().map(|&b| slot_len[b as usize] as usize).sum()
    }

    /// Writes the plain-format tree: 16 × (symbol, 4-bit length). Unused
    /// slots are written as zero-length entries.
    pub fn write_tree(&self, w: &mut BitWriter) {
        for i in 0..REDUCED_LEAVES - 1 {
            if i < self.hot.len() {
                w.put(self.hot[i] as u64, 8);
                w.put(self.lengths[i] as u64, 4);
            } else {
                w.put(0, 12);
            }
        }
        // Escape entry: symbol field unused, length meaningful.
        w.put(0, 8);
        w.put(self.lengths[self.escape_idx()] as u64, 4);
    }

    /// Reads a tree written by [`write_tree`](Self::write_tree) from the
    /// head of `stream`; returns the tree and the remaining payload bytes.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is shorter than [`Self::TREE_BYTES`].
    pub fn read_tree(stream: &[u8]) -> (Self, &[u8]) {
        assert!(stream.len() >= Self::TREE_BYTES, "stream too short for tree");
        let mut r = BitReader::new(&stream[..Self::TREE_BYTES]);
        let mut hot = Vec::new();
        let mut lengths = Vec::new();
        for _ in 0..REDUCED_LEAVES - 1 {
            let sym = r.get(8) as u8;
            let len = r.get(4) as u32;
            if len > 0 {
                hot.push(sym);
                lengths.push(len);
            }
        }
        let _ = r.get(8);
        lengths.push(r.get(4) as u32); // escape
        let codes = canonical_codes(&lengths);
        (Self { hot, lengths, codes }, &stream[Self::TREE_BYTES..])
    }

    /// Decodes `n` original bytes from `payload` (no tree header).
    ///
    /// # Panics
    ///
    /// Panics if the stream is malformed or shorter than `n` symbols.
    pub fn decode(&self, payload: &[u8], n: usize) -> Vec<u8> {
        let mut r = BitReader::new(payload);
        self.decode_from(&mut r, n)
    }

    /// Decodes `n` bytes from an open bit stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream is malformed.
    pub fn decode_from(&self, r: &mut BitReader<'_>, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        let escape = self.escape_idx();
        // Decode bit-by-bit against the canonical table (hardware uses a
        // pipelined multi-code decoder; functional result is identical).
        while out.len() < n {
            let mut code = 0u32;
            let mut len = 0u32;
            loop {
                code = (code << 1) | r.get_bit() as u32;
                len += 1;
                assert!(len <= 15, "code longer than any in tree");
                if let Some(i) = self.codes.iter().position(|&(c, l)| l == len && c == code) {
                    if i == escape {
                        out.push(r.get(8) as u8);
                    } else {
                        out.push(self.hot[i]);
                    }
                    break;
                }
            }
        }
        out
    }
}

/// A conventional 256-symbol length-limited canonical Huffman coder: the
/// *software Deflate* / gzip stand-in.
///
/// The tree header is 256 × 4-bit code lengths = 128 bytes; large for one
/// page, negligible for the multi-page dumps it is used on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullHuffman {
    lengths: Vec<u32>,
    codes: Vec<(u32, u32)>,
}

impl FullHuffman {
    /// Serialized tree size in bytes.
    pub const TREE_BYTES: usize = 128;

    /// Builds a length-limited (≤ 15) canonical tree over `data`'s bytes.
    pub fn build(data: &[u8]) -> Self {
        let mut freqs = vec![0u64; 256];
        for &b in data {
            freqs[b as usize] += 1;
        }
        let lengths = limited_lengths(&freqs, 15);
        let codes = canonical_codes(&lengths);
        Self { lengths, codes }
    }

    /// Encodes `data`, prefixing the 128-byte length table.
    ///
    /// # Panics
    ///
    /// Panics if `data` contains a byte whose frequency was zero at build
    /// time (always use the tree built from the same data).
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut w = BitWriter::new();
        for &l in &self.lengths {
            w.put(l as u64, 4);
        }
        for &b in data {
            let (code, len) = self.codes[b as usize];
            assert!(len > 0, "symbol {b} has no code");
            w.put(code as u64, len);
        }
        w.into_bytes()
    }

    /// Reads the tree and decodes `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics on malformed streams.
    pub fn decode(stream: &[u8], n: usize) -> Vec<u8> {
        let mut r = BitReader::new(stream);
        let mut lengths = vec![0u32; 256];
        for l in lengths.iter_mut() {
            *l = r.get(4) as u32;
        }
        let codes = canonical_codes(&lengths);
        // Build (len, code) -> symbol lookup.
        let mut dec: Vec<((u32, u32), usize)> = codes
            .iter()
            .enumerate()
            .filter(|(_, &(_, l))| l > 0)
            .map(|(i, &(c, l))| ((l, c), i))
            .collect();
        dec.sort_unstable();
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let mut code = 0u32;
            let mut len = 0u32;
            loop {
                code = (code << 1) | r.get_bit() as u32;
                len += 1;
                assert!(len <= 15, "code longer than any in tree");
                if let Ok(idx) = dec.binary_search_by_key(&(len, code), |&(k, _)| k) {
                    out.push(dec[idx].1 as u8);
                    break;
                }
            }
        }
        out
    }

    /// Encoded size in bits, excluding the tree header.
    pub fn encoded_bits(&self, data: &[u8]) -> usize {
        data.iter().map(|&b| self.codes[b as usize].1 as usize).sum()
    }
}

/// Convenience: expected compressed size (bytes, with tree header) of a
/// page under a freshly built reduced tree — the quantity the dynamic-skip
/// logic compares against the raw LZ size.
pub fn reduced_huffman_size(data: &[u8], max_depth: u32) -> usize {
    let tree = ReducedHuffman::build(data, max_depth);
    ReducedHuffman::TREE_BYTES + tree.encoded_bits(data).div_ceil(8)
}

/// Sanity guard used by tests: a page is never larger than this after
/// escape-coding everything (tree + 17 bits/byte).
pub fn worst_case_reduced_size() -> usize {
    ReducedHuffman::TREE_BYTES + (PAGE_SIZE * 17).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_satisfy_kraft() {
        let freqs: Vec<u64> = (1..=16u64).collect();
        let lengths = huffman_lengths(&freqs);
        let kraft: f64 = lengths.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!((kraft - 1.0).abs() < 1e-9, "kraft sum {kraft}");
    }

    #[test]
    fn depth_limit_enforced() {
        // Exponential frequencies force deep trees without limiting.
        let freqs: Vec<u64> = (0..16).map(|i| 1u64 << i).collect();
        let unlimited = huffman_lengths(&freqs);
        assert!(unlimited.iter().max().unwrap() > &8);
        let limited = limited_lengths(&freqs, 8);
        assert!(limited.iter().all(|&l| l <= 8));
        let kraft: f64 = limited.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9);
    }

    #[test]
    fn reduced_round_trip_text() {
        let data = b"hello huffman, hello reduced tree! ".repeat(30);
        let tree = ReducedHuffman::build(&data, DEFAULT_MAX_DEPTH);
        let enc = tree.encode(&data);
        assert!(enc.len() < data.len());
        let (tree2, rest) = ReducedHuffman::read_tree(&enc);
        assert_eq!(tree2.decode(rest, data.len()), data.to_vec());
    }

    #[test]
    fn reduced_round_trip_all_bytes() {
        // More than 15 distinct symbols: escape path must work.
        let data: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        let tree = ReducedHuffman::build(&data, DEFAULT_MAX_DEPTH);
        let enc = tree.encode(&data);
        let (tree2, rest) = ReducedHuffman::read_tree(&enc);
        assert_eq!(tree2.decode(rest, data.len()), data);
    }

    #[test]
    fn reduced_tree_has_at_most_16_leaves() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let tree = ReducedHuffman::build(&data, DEFAULT_MAX_DEPTH);
        assert_eq!(tree.hot_symbols().len(), 15);
        assert!(tree.depth() <= DEFAULT_MAX_DEPTH);
    }

    #[test]
    fn reduced_respects_custom_depth() {
        let mut data = Vec::new();
        for i in 0..16u32 {
            data.extend(std::iter::repeat_n(i as u8, 1 << i));
        }
        let tree = ReducedHuffman::build(&data, 6);
        assert!(tree.depth() <= 6);
        let enc = tree.encode(&data);
        let (t2, rest) = ReducedHuffman::read_tree(&enc);
        assert_eq!(t2.decode(rest, data.len()), data);
    }

    #[test]
    fn encoded_bits_matches_actual_encoding() {
        let data = b"zxcvbnm,asdfghjkl;qwertyuiop".repeat(40);
        let tree = ReducedHuffman::build(&data, DEFAULT_MAX_DEPTH);
        let bits = tree.encoded_bits(&data);
        let mut w = BitWriter::new();
        tree.encode_into(&mut w, &data);
        assert_eq!(w.len_bits(), bits);
    }

    #[test]
    fn skewed_data_beats_eight_bits_per_byte() {
        // 90% of bytes are one of four values.
        let mut data = Vec::new();
        for i in 0..4000usize {
            let b = match i % 10 {
                0 => 0x90u8.wrapping_add((i / 10) as u8),
                k => [0x00, 0x41, 0x42, 0x43][k % 4],
            };
            data.push(b);
        }
        let size = reduced_huffman_size(&data, DEFAULT_MAX_DEPTH);
        assert!(size < data.len() / 2, "got {size} for {}", data.len());
    }

    #[test]
    fn full_huffman_round_trip() {
        let data = b"The quick brown fox jumps over the lazy dog. 0123456789".repeat(20);
        let tree = FullHuffman::build(&data);
        let enc = tree.encode(&data);
        assert!(enc.len() < data.len());
        assert_eq!(FullHuffman::decode(&enc, data.len()), data.to_vec());
    }

    #[test]
    fn full_huffman_single_symbol() {
        let data = vec![7u8; 500];
        let tree = FullHuffman::build(&data);
        let enc = tree.encode(&data);
        assert_eq!(FullHuffman::decode(&enc, data.len()), data);
    }

    #[test]
    fn empty_input_round_trips() {
        let tree = ReducedHuffman::build(&[], DEFAULT_MAX_DEPTH);
        let enc = tree.encode(&[]);
        assert_eq!(enc.len(), ReducedHuffman::TREE_BYTES);
        let (t2, rest) = ReducedHuffman::read_tree(&enc);
        assert!(t2.decode(rest, 0).is_empty());
    }
}
