//! Huffman coding: the memory-specialized *reduced* tree and a standard
//! full tree.
//!
//! [`ReducedHuffman`] implements the paper's key Huffman specialization
//! (§V-B1): instead of RFC 1951's two canonical trees plus a third tree
//! compressing those trees, it uses a **single 16-leaf tree** — the 15
//! hottest byte values of the page plus one *escape* leaf. Bytes outside the
//! tree are coded as `escape-code + 8 raw bits`. The tree is written to the
//! output **uncompressed** (16 × 12-bit entries), so the decompressor sets
//! up in 16 cycles instead of the > 500 ns canonical-tree reconstruction of
//! IBM's design.
//!
//! [`FullHuffman`] is a conventional 256-symbol length-limited canonical
//! Huffman coder. It serves as this reproduction's *software Deflate*
//! backend (the gzip stand-in of Fig. 15) and as the DSE reference for "what
//! a bigger tree would buy".
//!
//! Both decoders are **table-driven** (à la `minimum_redundancy` /
//! libdeflate): a [`DecodeTable`] built once per tree resolves a symbol
//! with a single lookup keyed by the next `root_bits` stream bits, instead
//! of a per-bit scan over the code list. Codes longer than the root table
//! (possible only for symbols rarer than `2^-root_bits`) fall back to a
//! short sorted scan. Streams are bit-identical to the pre-table decoder's.

use crate::PAGE_SIZE;
use tmcc_compression::{BitReader, BitWriter, CodecError};

/// Number of leaves in the reduced tree (15 hot symbols + escape).
pub const REDUCED_LEAVES: usize = 16;
/// Default depth threshold for the reduced tree (paper: tunable; must fit
/// the 4-bit length field, and 15 also bounds a 16-leaf tree).
pub const DEFAULT_MAX_DEPTH: u32 = 15;

/// Builds Huffman code lengths for `freqs` (0-frequency symbols get no
/// code). Returns per-symbol code lengths.
fn huffman_lengths(freqs: &[u64]) -> Vec<u32> {
    #[derive(Clone)]
    struct Node {
        freq: u64,
        syms: Vec<usize>,
    }
    let mut lengths = vec![0u32; freqs.len()];
    let mut nodes: Vec<Node> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, &f)| Node { freq: f, syms: vec![i] })
        .collect();
    if nodes.is_empty() {
        return lengths;
    }
    if nodes.len() == 1 {
        lengths[nodes[0].syms[0]] = 1;
        return lengths;
    }
    while nodes.len() > 1 {
        // Pick the two lowest-frequency nodes (stable order for determinism).
        nodes.sort_by_key(|n| std::cmp::Reverse(n.freq));
        let a = nodes.pop().expect("two nodes remain");
        let b = nodes.pop().expect("two nodes remain");
        for &s in a.syms.iter().chain(b.syms.iter()) {
            lengths[s] += 1;
        }
        let mut syms = a.syms;
        syms.extend(b.syms);
        nodes.push(Node { freq: a.freq + b.freq, syms });
    }
    lengths
}

/// Limits code lengths to `max_depth` by repeatedly flattening the
/// frequency distribution and rebuilding — the standard zlib-style trick.
fn limited_lengths(freqs: &[u64], max_depth: u32) -> Vec<u32> {
    let mut f: Vec<u64> = freqs.to_vec();
    loop {
        let lengths = huffman_lengths(&f);
        if lengths.iter().all(|&l| l <= max_depth) {
            return lengths;
        }
        for v in f.iter_mut() {
            if *v > 0 {
                *v = v.div_ceil(2) + 1;
            }
        }
    }
}

/// Assigns canonical codes (shorter codes first; ties broken by symbol
/// index). Returns `(code, length)` per symbol.
fn canonical_codes(lengths: &[u32]) -> Vec<(u32, u32)> {
    let mut order: Vec<usize> = (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
    order.sort_by_key(|&i| (lengths[i], i));
    let mut codes = vec![(0u32, 0u32); lengths.len()];
    let mut code = 0u32;
    let mut prev_len = 0u32;
    for &i in &order {
        let len = lengths[i];
        code <<= len - prev_len;
        codes[i] = (code, len);
        code += 1;
        prev_len = len;
    }
    codes
}

/// Validates the Kraft inequality for *untrusted* code lengths (a tree
/// header read from a possibly bit-flipped stream). An oversubscribed tree
/// has colliding canonical codes whose values overflow their own bit
/// width, which would index past the end of the decode table.
fn validate_kraft(lengths: &[u32]) -> Result<(), CodecError> {
    const ONE: u64 = 1 << 15; // lengths are 4-bit fields, so always <= 15
    let sum: u64 = lengths.iter().filter(|&&l| l > 0).map(|&l| ONE >> l).sum();
    if sum > ONE {
        return Err(CodecError::InvalidCode { context: "Huffman tree lengths", value: sum });
    }
    Ok(())
}

/// Root-table size cap in bits: 2^11 × 2 B = 4 KiB, comfortably
/// cache-resident while still resolving every code of length ≤ 11 in one
/// lookup. Canonical codes longer than this belong to symbols with
/// probability < 2^-11, so the fallback scan is cold by construction.
const ROOT_BITS_CAP: u32 = 11;
/// Root-table sentinel: the keyed prefix continues into a code longer than
/// `root_bits`; resolve via the sorted `long` list.
const LONG_CODE: u16 = u16::MAX;

/// Single-lookup decoder for a canonical prefix code.
///
/// `table` is indexed by the next `root_bits` stream bits; each entry packs
/// `(code_len << 12) | symbol` for codes that fit the root table, `0` for
/// bit patterns no code produces, and [`LONG_CODE`] for prefixes of
/// longer-than-root codes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DecodeTable {
    /// Bits keying `table`: `min(max_len, ROOT_BITS_CAP)`, at least 1.
    root_bits: u32,
    /// Longest code length in the tree.
    max_len: u32,
    table: Vec<u16>,
    /// Codes longer than `root_bits`, sorted by (length, code): rare by
    /// construction, resolved by a scan over at most the alphabet size.
    long: Vec<(u32, u32, u16)>,
}

impl DecodeTable {
    /// Builds the table from per-symbol `(code, length)` pairs (length 0 =
    /// symbol absent).
    fn build(codes: &[(u32, u32)]) -> Self {
        let max_len = codes.iter().map(|&(_, l)| l).max().unwrap_or(0);
        let root_bits = max_len.clamp(1, ROOT_BITS_CAP);
        let mut table = vec![0u16; 1usize << root_bits];
        let mut long = Vec::new();
        for (sym, &(code, len)) in codes.iter().enumerate() {
            if len == 0 {
                continue;
            }
            if len <= root_bits {
                // Every root key whose top `len` bits equal `code` decodes
                // to this symbol.
                let lo = (code as usize) << (root_bits - len);
                let hi = ((code + 1) as usize) << (root_bits - len);
                let entry = ((len as u16) << 12) | sym as u16;
                for e in &mut table[lo..hi] {
                    *e = entry;
                }
            } else {
                table[(code >> (len - root_bits)) as usize] = LONG_CODE;
                long.push((len, code, sym as u16));
            }
        }
        long.sort_unstable();
        Self { root_bits, max_len, table, long }
    }

    /// Decodes one symbol, consuming exactly its code's bits.
    ///
    /// # Panics
    ///
    /// Panics if the next bits match no code in the tree.
    #[inline]
    fn decode_sym(&self, r: &mut BitReader<'_>) -> u16 {
        match self.try_decode_sym(r) {
            Ok(sym) => sym,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible symbol decode: the next bits matching no code, or the
    /// stream ending inside a code, is an error value instead of a panic.
    /// `peek` zero-pads past the end, so exhaustion is caught by the
    /// consume step after the (padded) prefix resolves.
    #[inline]
    fn try_decode_sym(&self, r: &mut BitReader<'_>) -> Result<u16, CodecError> {
        let key = r.peek(self.root_bits);
        let e = self.table[key as usize];
        if e != LONG_CODE {
            if e == 0 {
                return Err(CodecError::InvalidCode { context: "Huffman code", value: key });
            }
            r.try_consume((e >> 12) as u32, "Huffman code")?;
            return Ok(e & 0x0FFF);
        }
        let bits = r.peek(self.max_len) as u32;
        for &(len, code, sym) in &self.long {
            if bits >> (self.max_len - len) == code {
                r.try_consume(len, "Huffman long code")?;
                return Ok(sym);
            }
        }
        Err(CodecError::InvalidCode { context: "Huffman long code", value: bits as u64 })
    }
}

/// The reduced 16-leaf Huffman coder (paper §V-B1).
///
/// A `ReducedHuffman` value is the *tree*: build one per page with
/// [`ReducedHuffman::build`], or recover it from a compressed stream with
/// [`ReducedHuffman::read_tree`]. Construction also derives the encode
/// (symbol→slot, per-symbol bit cost) and decode (root LUT) tables once,
/// so the per-byte hot paths are single array lookups.
///
/// # Examples
///
/// ```
/// use tmcc_deflate::ReducedHuffman;
///
/// let data = b"aaaaaabbbbccdde".repeat(20);
/// let tree = ReducedHuffman::build(&data, 15);
/// let encoded = tree.encode(&data);
/// let (tree2, rest) = ReducedHuffman::read_tree(&encoded);
/// assert_eq!(tree2.decode(rest, data.len()), data);
/// ```
#[derive(Debug, Clone)]
pub struct ReducedHuffman {
    /// The 15 in-tree symbols, hottest first. May be shorter if the page
    /// has fewer distinct bytes.
    hot: Vec<u8>,
    /// Code lengths: `lengths[i]` for `hot[i]`, last entry for escape.
    lengths: Vec<u32>,
    /// Canonical codes matching `lengths`.
    codes: Vec<(u32, u32)>,
    /// Byte value → tree slot; [`Self::NO_SLOT`] for escape-coded bytes.
    slot: [u8; 256],
    /// Encoded bits per byte value (code length, or escape length + 8).
    sym_bits: [u8; 256],
    /// The single-lookup decoder over `codes`.
    decode_table: DecodeTable,
}

/// Two trees are equal iff they code identically; the derived tables are a
/// pure function of `(hot, lengths)`.
impl PartialEq for ReducedHuffman {
    fn eq(&self, other: &Self) -> bool {
        self.hot == other.hot && self.lengths == other.lengths
    }
}
impl Eq for ReducedHuffman {}

impl ReducedHuffman {
    /// Serialized tree size in bytes: 16 entries × (8-bit symbol + 4-bit
    /// length) = 24 bytes, written uncompressed (§V-B1: "our compressor
    /// outputs the tree in a plain format").
    pub const TREE_BYTES: usize = 24;

    /// `slot` sentinel for bytes outside the tree (escape-coded).
    const NO_SLOT: u8 = 0xFF;

    /// Finishes construction from the semantic fields, deriving every
    /// cached table. Single point shared by [`build`](Self::build) and
    /// [`read_tree`](Self::read_tree).
    fn from_parts(hot: Vec<u8>, lengths: Vec<u32>) -> Self {
        let codes = canonical_codes(&lengths);
        let escape = lengths.len() - 1;
        let esc_bits = (codes[escape].1 + 8) as u8;
        let mut slot = [Self::NO_SLOT; 256];
        let mut sym_bits = [esc_bits; 256];
        for (i, &b) in hot.iter().enumerate() {
            slot[b as usize] = i as u8;
            sym_bits[b as usize] = codes[i].1 as u8;
        }
        let decode_table = DecodeTable::build(&codes);
        Self { hot, lengths, codes, slot, sym_bits, decode_table }
    }

    /// Counts byte frequencies and builds the reduced tree: the 15 hottest
    /// characters plus an escape leaf whose frequency is the sum of all
    /// remaining characters. `max_depth` bounds the tree depth (the
    /// `Build Reduced Tree` depth threshold of §V-B4); the escape leaf is
    /// never discarded.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is 0 or exceeds 15 (the 4-bit length field).
    pub fn build(data: &[u8], max_depth: u32) -> Self {
        assert!((1..=15).contains(&max_depth), "depth must be in 1..=15");
        let mut freqs = [0u64; 256];
        for &b in data {
            freqs[b as usize] += 1;
        }
        let mut by_freq: Vec<usize> = (0..256).filter(|&i| freqs[i] > 0).collect();
        by_freq.sort_by_key(|&i| (std::cmp::Reverse(freqs[i]), i));
        let hot: Vec<u8> = by_freq.iter().take(REDUCED_LEAVES - 1).map(|&i| i as u8).collect();
        let escape_freq: u64 = by_freq.iter().skip(REDUCED_LEAVES - 1).map(|&i| freqs[i]).sum();
        let mut tree_freqs: Vec<u64> = hot.iter().map(|&b| freqs[b as usize]).collect();
        // The escape leaf always exists (paper: never discarded), even if
        // the page currently has no cold characters.
        tree_freqs.push(escape_freq.max(1));
        let lengths = limited_lengths(&tree_freqs, max_depth);
        Self::from_parts(hot, lengths)
    }

    /// The in-tree symbols, hottest first.
    pub fn hot_symbols(&self) -> &[u8] {
        &self.hot
    }

    /// Index of the escape leaf in the length/code tables.
    fn escape_idx(&self) -> usize {
        self.lengths.len() - 1
    }

    /// Maximum code length in this tree.
    pub fn depth(&self) -> u32 {
        self.lengths.iter().copied().max().unwrap_or(0)
    }

    /// Encodes `data`, prefixing the uncompressed tree (24 bytes).
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut w = BitWriter::new();
        self.write_tree(&mut w);
        self.encode_into(&mut w, data);
        w.into_bytes()
    }

    /// Encodes `data` into an existing bit stream without the tree header.
    pub fn encode_into(&self, w: &mut BitWriter, data: &[u8]) {
        let (esc_code, esc_len) = self.codes[self.escape_idx()];
        for &b in data {
            let s = self.slot[b as usize];
            if s != Self::NO_SLOT {
                let (code, len) = self.codes[s as usize];
                w.put(code as u64, len);
            } else {
                // Fused escape-code + raw-byte write: one accumulator pass.
                w.put(((esc_code as u64) << 8) | b as u64, esc_len + 8);
            }
        }
    }

    /// Size in bits `data` would occupy under this tree, without header —
    /// used by the dynamic-skip decision (§V-B1).
    pub fn encoded_bits(&self, data: &[u8]) -> usize {
        data.iter().map(|&b| self.sym_bits[b as usize] as usize).sum()
    }

    /// Writes the plain-format tree: 16 × (symbol, 4-bit length). Unused
    /// slots are written as zero-length entries.
    pub fn write_tree(&self, w: &mut BitWriter) {
        for i in 0..REDUCED_LEAVES - 1 {
            if i < self.hot.len() {
                w.put(self.hot[i] as u64, 8);
                w.put(self.lengths[i] as u64, 4);
            } else {
                w.put(0, 12);
            }
        }
        // Escape entry: symbol field unused, length meaningful.
        w.put(0, 8);
        w.put(self.lengths[self.escape_idx()] as u64, 4);
    }

    /// Reads a tree written by [`write_tree`](Self::write_tree) from the
    /// head of `stream`; returns the tree and the remaining payload bytes.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is shorter than [`Self::TREE_BYTES`] or the tree
    /// entries are corrupt (the [`try_read_tree`](Self::try_read_tree)
    /// error, formatted).
    pub fn read_tree(stream: &[u8]) -> (Self, &[u8]) {
        match Self::try_read_tree(stream) {
            Ok(parts) => parts,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible tree read for untrusted streams: reports a short header or
    /// an oversubscribed (Kraft-violating) set of code lengths — which a
    /// single flipped length bit can produce — instead of panicking.
    pub fn try_read_tree(stream: &[u8]) -> Result<(Self, &[u8]), CodecError> {
        if stream.len() < Self::TREE_BYTES {
            return Err(CodecError::UnexpectedEnd { context: "reduced tree header" });
        }
        let mut r = BitReader::new(&stream[..Self::TREE_BYTES]);
        let mut hot = Vec::new();
        let mut lengths = Vec::new();
        for _ in 0..REDUCED_LEAVES - 1 {
            let sym = r.get(8) as u8;
            let len = r.get(4) as u32;
            if len > 0 {
                hot.push(sym);
                lengths.push(len);
            }
        }
        let _ = r.get(8);
        lengths.push(r.get(4) as u32); // escape
        validate_kraft(&lengths)?;
        Ok((Self::from_parts(hot, lengths), &stream[Self::TREE_BYTES..]))
    }

    /// Decodes `n` original bytes from `payload` (no tree header).
    ///
    /// # Panics
    ///
    /// Panics if the stream is malformed or shorter than `n` symbols.
    pub fn decode(&self, payload: &[u8], n: usize) -> Vec<u8> {
        let mut r = BitReader::new(payload);
        self.decode_from(&mut r, n)
    }

    /// Decodes `n` bytes from an open bit stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream is malformed.
    pub fn decode_from(&self, r: &mut BitReader<'_>, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        self.decode_from_into(r, n, &mut out);
        out
    }

    /// Decodes `n` bytes from an open bit stream, appending to `out` —
    /// the allocation-free variant the pipeline scratch uses.
    ///
    /// # Panics
    ///
    /// Panics if the stream is malformed.
    pub fn decode_from_into(&self, r: &mut BitReader<'_>, n: usize, out: &mut Vec<u8>) {
        let escape = self.escape_idx() as u16;
        out.reserve(n);
        for _ in 0..n {
            let s = self.decode_table.decode_sym(r);
            if s == escape {
                out.push(r.get(8) as u8);
            } else {
                out.push(self.hot[s as usize]);
            }
        }
    }

    /// Fallible decode of `n` bytes from `payload` (no tree header).
    pub fn try_decode(&self, payload: &[u8], n: usize) -> Result<Vec<u8>, CodecError> {
        let mut r = BitReader::new(payload);
        let mut out = Vec::new();
        self.try_decode_from_into(&mut r, n, &mut out)?;
        Ok(out)
    }

    /// Fallible variant of [`decode_from_into`](Self::decode_from_into):
    /// invalid codes and exhaustion are error values. `out` may hold a
    /// partial prefix on error; the length is bounded by `n` either way.
    pub fn try_decode_from_into(
        &self,
        r: &mut BitReader<'_>,
        n: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let escape = self.escape_idx() as u16;
        // `n` may come from corrupted metadata: the reserve is only a hint,
        // so bound it — the loop exhausts the (bounded) stream long before
        // a huge `n` is reached.
        out.reserve(n.min(1 << 20));
        for _ in 0..n {
            let s = self.decode_table.try_decode_sym(r)?;
            if s == escape {
                out.push(r.try_get(8, "Huffman escape byte")? as u8);
            } else {
                out.push(self.hot[s as usize]);
            }
        }
        Ok(())
    }
}

/// A conventional 256-symbol length-limited canonical Huffman coder: the
/// *software Deflate* / gzip stand-in.
///
/// The tree header is 256 × 4-bit code lengths = 128 bytes; large for one
/// page, negligible for the multi-page dumps it is used on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullHuffman {
    lengths: Vec<u32>,
    codes: Vec<(u32, u32)>,
}

impl FullHuffman {
    /// Serialized tree size in bytes.
    pub const TREE_BYTES: usize = 128;

    /// Builds a length-limited (≤ 15) canonical tree over `data`'s bytes.
    pub fn build(data: &[u8]) -> Self {
        let mut freqs = vec![0u64; 256];
        for &b in data {
            freqs[b as usize] += 1;
        }
        let lengths = limited_lengths(&freqs, 15);
        let codes = canonical_codes(&lengths);
        Self { lengths, codes }
    }

    /// Encodes `data`, prefixing the 128-byte length table.
    ///
    /// # Panics
    ///
    /// Panics if `data` contains a byte whose frequency was zero at build
    /// time (always use the tree built from the same data).
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut w =
            BitWriter::with_capacity(Self::TREE_BYTES + self.encoded_bits(data).div_ceil(8));
        for &l in &self.lengths {
            w.put(l as u64, 4);
        }
        for &b in data {
            let (code, len) = self.codes[b as usize];
            assert!(len > 0, "symbol {b} has no code");
            w.put(code as u64, len);
        }
        w.into_bytes()
    }

    /// Reads the tree and decodes `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics on malformed streams (the [`try_decode`](Self::try_decode)
    /// error, formatted).
    pub fn decode(stream: &[u8], n: usize) -> Vec<u8> {
        match Self::try_decode(stream, n) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible decode for untrusted streams: a short header, an
    /// oversubscribed length table, or a payload that exhausts or hits an
    /// invalid code is an error value instead of a panic.
    pub fn try_decode(stream: &[u8], n: usize) -> Result<Vec<u8>, CodecError> {
        if stream.len() < Self::TREE_BYTES {
            return Err(CodecError::UnexpectedEnd { context: "full tree header" });
        }
        let mut r = BitReader::new(stream);
        let mut lengths = vec![0u32; 256];
        for l in lengths.iter_mut() {
            *l = r.get(4) as u32;
        }
        validate_kraft(&lengths)?;
        let table = DecodeTable::build(&canonical_codes(&lengths));
        // `n` may come from a corrupted header; the stream runs dry first.
        let mut out = Vec::with_capacity(n.min(1 << 20));
        while out.len() < n {
            out.push(table.try_decode_sym(&mut r)? as u8);
        }
        Ok(out)
    }

    /// Encoded size in bits, excluding the tree header.
    pub fn encoded_bits(&self, data: &[u8]) -> usize {
        data.iter().map(|&b| self.codes[b as usize].1 as usize).sum()
    }
}

/// Convenience: expected compressed size (bytes, with tree header) of a
/// page under a freshly built reduced tree — the quantity the dynamic-skip
/// logic compares against the raw LZ size.
pub fn reduced_huffman_size(data: &[u8], max_depth: u32) -> usize {
    let tree = ReducedHuffman::build(data, max_depth);
    ReducedHuffman::TREE_BYTES + tree.encoded_bits(data).div_ceil(8)
}

/// Sanity guard used by tests: a page is never larger than this after
/// escape-coding everything (tree + 17 bits/byte).
pub fn worst_case_reduced_size() -> usize {
    ReducedHuffman::TREE_BYTES + (PAGE_SIZE * 17).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_satisfy_kraft() {
        let freqs: Vec<u64> = (1..=16u64).collect();
        let lengths = huffman_lengths(&freqs);
        let kraft: f64 = lengths.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!((kraft - 1.0).abs() < 1e-9, "kraft sum {kraft}");
    }

    #[test]
    fn depth_limit_enforced() {
        // Exponential frequencies force deep trees without limiting.
        let freqs: Vec<u64> = (0..16).map(|i| 1u64 << i).collect();
        let unlimited = huffman_lengths(&freqs);
        assert!(unlimited.iter().max().unwrap() > &8);
        let limited = limited_lengths(&freqs, 8);
        assert!(limited.iter().all(|&l| l <= 8));
        let kraft: f64 = limited.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9);
    }

    #[test]
    fn reduced_round_trip_text() {
        let data = b"hello huffman, hello reduced tree! ".repeat(30);
        let tree = ReducedHuffman::build(&data, DEFAULT_MAX_DEPTH);
        let enc = tree.encode(&data);
        assert!(enc.len() < data.len());
        let (tree2, rest) = ReducedHuffman::read_tree(&enc);
        assert_eq!(tree2.decode(rest, data.len()), data.to_vec());
    }

    #[test]
    fn reduced_round_trip_all_bytes() {
        // More than 15 distinct symbols: escape path must work.
        let data: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        let tree = ReducedHuffman::build(&data, DEFAULT_MAX_DEPTH);
        let enc = tree.encode(&data);
        let (tree2, rest) = ReducedHuffman::read_tree(&enc);
        assert_eq!(tree2.decode(rest, data.len()), data);
    }

    #[test]
    fn reduced_tree_has_at_most_16_leaves() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let tree = ReducedHuffman::build(&data, DEFAULT_MAX_DEPTH);
        assert_eq!(tree.hot_symbols().len(), 15);
        assert!(tree.depth() <= DEFAULT_MAX_DEPTH);
    }

    #[test]
    fn reduced_respects_custom_depth() {
        let mut data = Vec::new();
        for i in 0..16u32 {
            data.extend(std::iter::repeat_n(i as u8, 1 << i));
        }
        let tree = ReducedHuffman::build(&data, 6);
        assert!(tree.depth() <= 6);
        let enc = tree.encode(&data);
        let (t2, rest) = ReducedHuffman::read_tree(&enc);
        assert_eq!(t2.decode(rest, data.len()), data);
    }

    #[test]
    fn encoded_bits_matches_actual_encoding() {
        let data = b"zxcvbnm,asdfghjkl;qwertyuiop".repeat(40);
        let tree = ReducedHuffman::build(&data, DEFAULT_MAX_DEPTH);
        let bits = tree.encoded_bits(&data);
        let mut w = BitWriter::new();
        tree.encode_into(&mut w, &data);
        assert_eq!(w.len_bits(), bits);
    }

    #[test]
    fn skewed_data_beats_eight_bits_per_byte() {
        // 90% of bytes are one of four values.
        let mut data = Vec::new();
        for i in 0..4000usize {
            let b = match i % 10 {
                0 => 0x90u8.wrapping_add((i / 10) as u8),
                k => [0x00, 0x41, 0x42, 0x43][k % 4],
            };
            data.push(b);
        }
        let size = reduced_huffman_size(&data, DEFAULT_MAX_DEPTH);
        assert!(size < data.len() / 2, "got {size} for {}", data.len());
    }

    #[test]
    fn full_huffman_round_trip() {
        let data = b"The quick brown fox jumps over the lazy dog. 0123456789".repeat(20);
        let tree = FullHuffman::build(&data);
        let enc = tree.encode(&data);
        assert!(enc.len() < data.len());
        assert_eq!(FullHuffman::decode(&enc, data.len()), data.to_vec());
    }

    #[test]
    fn full_huffman_single_symbol() {
        let data = vec![7u8; 500];
        let tree = FullHuffman::build(&data);
        let enc = tree.encode(&data);
        assert_eq!(FullHuffman::decode(&enc, data.len()), data);
    }

    #[test]
    fn empty_input_round_trips() {
        let tree = ReducedHuffman::build(&[], DEFAULT_MAX_DEPTH);
        let enc = tree.encode(&[]);
        assert_eq!(enc.len(), ReducedHuffman::TREE_BYTES);
        let (t2, rest) = ReducedHuffman::read_tree(&enc);
        assert!(t2.decode(rest, 0).is_empty());
    }

    /// Reference decoder: the pre-LUT per-bit scan over the canonical code
    /// list, kept verbatim as the differential oracle for the table.
    fn decode_by_bit_scan(tree: &ReducedHuffman, payload: &[u8], n: usize) -> Vec<u8> {
        let mut r = BitReader::new(payload);
        let mut out = Vec::with_capacity(n);
        let escape = tree.escape_idx();
        while out.len() < n {
            let mut code = 0u32;
            let mut len = 0u32;
            loop {
                code = (code << 1) | r.get_bit() as u32;
                len += 1;
                assert!(len <= 15, "code longer than any in tree");
                if let Some(i) = tree.codes.iter().position(|&(c, l)| l == len && c == code) {
                    if i == escape {
                        out.push(r.get(8) as u8);
                    } else {
                        out.push(tree.hot[i]);
                    }
                    break;
                }
            }
        }
        out
    }

    #[test]
    fn lut_decoder_matches_bit_scan_reference() {
        let corpora: Vec<Vec<u8>> = vec![
            b"hello huffman, hello reduced tree! ".repeat(40),
            (0..=255u8).cycle().take(3000).collect(),
            vec![7u8; 1000],
            (0..2000u32).map(|i| ((i * i) >> 5) as u8).collect(),
        ];
        for data in corpora {
            for depth in [4, 8, 15] {
                let tree = ReducedHuffman::build(&data, depth);
                let mut w = BitWriter::new();
                tree.encode_into(&mut w, &data);
                let payload = w.into_bytes();
                assert_eq!(
                    tree.decode(&payload, data.len()),
                    decode_by_bit_scan(&tree, &payload, data.len()),
                    "depth {depth}"
                );
            }
        }
    }

    #[test]
    fn deep_trees_use_the_long_code_fallback() {
        // Exponential frequencies force 15-deep codes past the 11-bit root.
        let mut data = Vec::new();
        for i in 0..16u32 {
            data.extend(std::iter::repeat_n(i as u8, 1usize << i));
        }
        let tree = ReducedHuffman::build(&data, 15);
        assert!(tree.depth() > ROOT_BITS_CAP, "need a deep tree for this test");
        assert!(!tree.decode_table.long.is_empty());
        let enc = tree.encode(&data);
        let (t2, rest) = ReducedHuffman::read_tree(&enc);
        assert_eq!(t2.decode(rest, data.len()), data);
    }

    #[test]
    #[should_panic(expected = "invalid code")]
    fn malformed_stream_panics() {
        // A single-symbol tree leaves half the root table invalid; a
        // stream of 1-bits hits it immediately.
        let tree = ReducedHuffman::build(&[], DEFAULT_MAX_DEPTH);
        let _ = tree.decode(&[0xFF, 0xFF], 4);
    }

    #[test]
    fn malformed_stream_is_a_typed_error() {
        let tree = ReducedHuffman::build(&[], DEFAULT_MAX_DEPTH);
        assert_eq!(
            tree.try_decode(&[0xFF, 0xFF], 4),
            Err(CodecError::InvalidCode { context: "Huffman code", value: 1 })
        );
        // An exhausted payload is UnexpectedEnd, not a panic.
        let data = b"abcabcabc".repeat(10);
        let tree = ReducedHuffman::build(&data, DEFAULT_MAX_DEPTH);
        let mut w = BitWriter::new();
        tree.encode_into(&mut w, &data);
        let payload = w.into_bytes();
        let err = tree.try_decode(&payload, data.len() + 512).unwrap_err();
        assert!(
            matches!(err, CodecError::UnexpectedEnd { .. } | CodecError::InvalidCode { .. }),
            "got {err}"
        );
    }

    #[test]
    fn oversubscribed_tree_header_is_rejected() {
        // Hand-build a tree header claiming three codes of length 1: the
        // canonical third code would be `10` in 1 bit — impossible, and
        // exactly what a flipped length nibble can produce.
        let mut w = BitWriter::new();
        for sym in [b'a', b'b'] {
            w.put(sym as u64, 8);
            w.put(1, 4);
        }
        for _ in 2..REDUCED_LEAVES - 1 {
            w.put(0, 12);
        }
        w.put(0, 8);
        w.put(1, 4); // escape also claims length 1 => Kraft sum 3/2
        let header = w.into_bytes();
        assert_eq!(header.len(), ReducedHuffman::TREE_BYTES);
        let err = ReducedHuffman::try_read_tree(&header).unwrap_err();
        assert_eq!(
            err,
            CodecError::InvalidCode { context: "Huffman tree lengths", value: 3 * (1 << 14) }
        );
        // Short headers are UnexpectedEnd.
        assert!(matches!(
            ReducedHuffman::try_read_tree(&header[..10]),
            Err(CodecError::UnexpectedEnd { context: "reduced tree header" })
        ));
    }

    #[test]
    fn full_huffman_rejects_corrupt_streams() {
        assert_eq!(
            FullHuffman::try_decode(&[0u8; 16], 4),
            Err(CodecError::UnexpectedEnd { context: "full tree header" })
        );
        // All-0x11 header: every symbol claims length 1 => massively
        // oversubscribed.
        let bad = vec![0x11u8; FullHuffman::TREE_BYTES];
        assert!(matches!(
            FullHuffman::try_decode(&bad, 4),
            Err(CodecError::InvalidCode { context: "Huffman tree lengths", .. })
        ));
    }
}
