//! Memory-specialized ASIC Deflate (paper §V-B).
//!
//! The paper takes IBM's general-purpose ASIC Deflate (Power9/z15, reference
//! [11]) and specializes it for 4 KiB memory pages:
//!
//! * **LZ stage** ([`lz`]): sliding-window match search against a 1 KiB CAM
//!   (down from 32 KiB), greedy match selection, and a space-efficient
//!   256-symbol output alphabet instead of RFC 1951's 286-symbol alphabet.
//! * **Reduced Huffman** ([`huffman`]): a 16-leaf tree — the 15 hottest
//!   bytes of the LZ output plus one escape code — stored *uncompressed* so
//!   decompression needs no slow canonical-tree reconstruction.
//! * **Page-level pipelining** ([`pipeline`]): LZ and Huffman operate
//!   concurrently on two independent pages via an accumulate/replay buffer,
//!   and Huffman is dynamically skipped for pages it would expand.
//! * **Cycle/latency model** ([`timing`]): per-stage rates from the paper
//!   (8 B/cycle LZ, 32-cycle tree build, 16-cycle tree read/write, 32 b/cycle
//!   Huffman, 2.5 GHz) reproducing Table II, plus the analytic model of
//!   IBM's ASIC ([`ibm`]) and the area/power model of Table I ([`area`]).
//!
//! The codec is **functionally real** — compress/decompress round-trips are
//! bit-exact and property-tested — while latency and area are *models*
//! (clearly separated in [`timing`] / [`area`]), because this reproduction
//! replaces the paper's Chisel RTL + Verilator + 7 nm synthesis flow.
//!
//! # Examples
//!
//! ```
//! use tmcc_deflate::MemDeflate;
//!
//! let codec = MemDeflate::default();
//! let page = vec![42u8; 4096];
//! let compressed = codec.compress_page(&page);
//! assert!(compressed.stored_len() < 200);
//! assert_eq!(codec.decompress_page(&compressed), page);
//! ```

pub mod area;
pub mod huffman;
pub mod ibm;
pub mod lz;
pub mod pipeline;
pub mod timing;

pub use area::{AreaModel, ModuleArea};
pub use huffman::{FullHuffman, ReducedHuffman};
pub use ibm::IbmDeflateModel;
pub use lz::{LzCodec, LzScratch};
pub use pipeline::{
    CompressedPage, DeflateParams, DeflateScratch, MemDeflate, PageMode, PageSeal, SizeQuote,
    SoftwareDeflate,
};
pub use timing::{DeflateTiming, TimingReport};
pub use tmcc_compression::CodecError;

/// Size of a memory page in bytes.
pub const PAGE_SIZE: usize = 4096;
