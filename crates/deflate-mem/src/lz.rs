//! LZ77 with a sliding-window CAM and a 256-symbol output alphabet
//! (paper §V-B2, §V-B4).
//!
//! Hardware performs match search with a content-addressable memory holding
//! the most recent `window` bytes (1 KiB by default after the paper's design
//! space exploration; 32 KiB in IBM's general-purpose design). Match
//! *selection* is greedy, not RFC 1951 "lazy matching" — the paper
//! simplifies this deliberately.
//!
//! ## Output format
//!
//! Because the reduced Huffman stage consumes **bytes**, the LZ output is a
//! byte stream over a space-efficient 256-symbol alphabet (the paper's
//! departure from RFC 1951's 286-symbol alphabet):
//!
//! * any byte other than `0xFF` — a literal;
//! * `0xFF 0x00` — an escaped literal `0xFF`;
//! * `0xFF` + packed match: a big-endian field of `6 + dist_bits` bits,
//!   zero-padded to whole bytes, whose top 6 bits are `len - min_match + 1`
//!   (never zero, which disambiguates from the escaped literal) and whose
//!   low `dist_bits` bits are `distance - 1`.
//!
//! `dist_bits = log2(window)`, so a 1 KiB CAM yields 3-byte matches and the
//! 32 KiB software-deflate window yields 4-byte matches.
//!
//! ## Search state
//!
//! The hash-chain search state lives in a reusable [`LzScratch`]: a
//! 4096-entry head table of absolute positions (`u64`, so arbitrarily long
//! inputs never wrap — the old `i32` chains silently dropped every match
//! past 2 GiB) and a **ring buffer of `window` chain links** storing the
//! `u32` distance to the previous same-hash position. A slot is only ever
//! read for candidates still inside the window, which is exactly the
//! lifetime before the ring reuses it, so the chain array needs `window`
//! entries instead of one per input byte and never needs clearing between
//! pages.

use tmcc_compression::CodecError;

/// Maximum match length representable in the 6-bit length field.
const MAX_LEN_CODE: u32 = 63;
/// Escape marker byte.
const MARKER: u8 = 0xFF;
/// Hash-table size for the chain heads (models the CAM search).
const HASH_BITS: u32 = 12;
/// Head-table sentinel: no position with this hash yet.
const NO_POS: u64 = u64::MAX;
/// Candidates examined per position (the CAM's probe budget).
const MAX_PROBES: u32 = 64;

/// Token-level statistics from one compression pass, consumed by the cycle
/// model (pipeline stalls depend on match structure, §V-B4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LzStats {
    /// Number of literal tokens emitted.
    pub literals: usize,
    /// Number of match tokens emitted.
    pub matches: usize,
    /// Total input bytes covered by matches.
    pub matched_bytes: usize,
}

/// Reusable hash-chain state for [`LzCodec::compress_with`].
///
/// One scratch serves any window size (it re-shapes itself per call) and
/// any number of consecutive compressions; reuse removes the two
/// per-page allocations the searcher needs.
#[derive(Debug, Clone, Default)]
pub struct LzScratch {
    /// Most recent absolute position per hash bucket; [`NO_POS`] = empty.
    heads: Vec<u64>,
    /// Ring of `window` chain links: distance back to the previous
    /// position with the same hash (0 = chain ends).
    chain_dist: Vec<u32>,
}

impl LzScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the buffers for `window` and clears the head table.
    fn prepare(&mut self, window: usize) {
        self.heads.clear();
        self.heads.resize(1 << HASH_BITS, NO_POS);
        // Chain slots never need clearing: a slot is written when its
        // position is inserted and only read while that position is still
        // inside the window (see the module docs).
        if self.chain_dist.len() != window {
            self.chain_dist.clear();
            self.chain_dist.resize(window, 0);
        }
    }
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `max`, compared a word at a time.
#[inline]
fn match_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let mut l = 0;
    while l + 8 <= max {
        let x = u64::from_le_bytes(data[a + l..a + l + 8].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(data[b + l..b + l + 8].try_into().expect("8 bytes"));
        let diff = x ^ y;
        if diff != 0 {
            return l + (diff.trailing_zeros() / 8) as usize;
        }
        l += 8;
    }
    while l < max && data[a + l] == data[b + l] {
        l += 1;
    }
    l
}

/// An LZ77 codec with a configurable sliding window.
///
/// # Examples
///
/// ```
/// use tmcc_deflate::LzCodec;
///
/// let lz = LzCodec::new(1024);
/// let data = b"abcabcabcabcabcabcabcabc".repeat(8);
/// let (out, stats) = lz.compress(&data);
/// assert!(out.len() < data.len());
/// assert!(stats.matches > 0);
/// assert_eq!(lz.decompress(&out), data);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LzCodec {
    window: usize,
    dist_bits: u32,
    min_match: usize,
}

impl LzCodec {
    /// Creates a codec with the given sliding-window (CAM) size in bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `window` is a power of two in `[256, 65536]`.
    pub fn new(window: usize) -> Self {
        assert!(
            window.is_power_of_two() && (256..=65536).contains(&window),
            "window must be a power of two in [256, 65536]"
        );
        let dist_bits = window.trailing_zeros();
        let match_bytes = 1 + (6 + dist_bits).div_ceil(8) as usize;
        // A match must beat its own encoding by at least one byte.
        let min_match = match_bytes + 1;
        Self { window, dist_bits, min_match }
    }

    /// The paper's memory-specialized configuration: a 1 KiB CAM.
    pub fn memory_specialized() -> Self {
        Self::new(1024)
    }

    /// The sliding-window size in bytes.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Minimum length of an emitted match.
    pub fn min_match(&self) -> usize {
        self.min_match
    }

    /// Longest representable match.
    pub fn max_match(&self) -> usize {
        self.min_match + MAX_LEN_CODE as usize - 1
    }

    /// Compresses `data`, returning the LZ byte stream and token
    /// statistics. Convenience wrapper allocating fresh scratch; hot paths
    /// use [`compress_with`](Self::compress_with).
    pub fn compress(&self, data: &[u8]) -> (Vec<u8>, LzStats) {
        let mut out = Vec::new();
        let stats = self.compress_with(data, &mut LzScratch::new(), &mut out);
        (out, stats)
    }

    /// Compresses `data` into `out` (cleared first), reusing `scratch`
    /// across calls. Output is byte-identical to [`compress`](Self::compress).
    pub fn compress_with(
        &self,
        data: &[u8],
        scratch: &mut LzScratch,
        out: &mut Vec<u8>,
    ) -> LzStats {
        self.compress_with_base(data, scratch, out, 0)
    }

    /// [`compress_with`](Self::compress_with) with the absolute position
    /// counter starting at `base` instead of 0. Output is invariant to
    /// `base` (only distances matter); the knob exists so tests can place
    /// the stream across historical overflow boundaries (the old `i32`
    /// chains broke at 2 GiB) without allocating gigabytes.
    #[doc(hidden)]
    pub fn compress_with_base(
        &self,
        data: &[u8],
        scratch: &mut LzScratch,
        out: &mut Vec<u8>,
        base: u64,
    ) -> LzStats {
        out.clear();
        out.reserve(data.len() / 2 + 16);
        let mut stats = LzStats::default();
        scratch.prepare(self.window);
        let heads = &mut scratch.heads[..];
        let chain_dist = &mut scratch.chain_dist[..];
        let window = self.window as u64;
        let ring_mask = self.window - 1;

        let hash = |d: &[u8]| -> usize {
            let v = u32::from_le_bytes([d[0], d[1], d[2], d[3]]);
            (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
        };

        let insert = |pos: usize, data: &[u8], heads: &mut [u64], chain_dist: &mut [u32]| {
            if pos + 4 <= data.len() {
                let h = hash(&data[pos..]);
                let abs = base + pos as u64;
                let prev = heads[h];
                // Links to positions already outside the window are dead:
                // store "chain ends" so distances always fit u32.
                let back = abs.wrapping_sub(prev);
                chain_dist[pos & ring_mask] =
                    if prev == NO_POS || back >= window { 0 } else { back as u32 };
                heads[h] = abs;
            }
        };
        let mut i = 0;
        while i < data.len() {
            let mut best_len = 0usize;
            let mut best_dist = 0usize;
            if i + 4 <= data.len() {
                let h = hash(&data[i..]);
                let abs = base + i as u64;
                let floor = abs.saturating_sub(window);
                let max = (data.len() - i).min(self.max_match());
                let mut cand = heads[h];
                let mut probes = 0;
                while cand != NO_POS && cand >= floor && probes < MAX_PROBES {
                    let c = (cand - base) as usize;
                    let l = match_len(data, c, i, max);
                    if l > best_len {
                        best_len = l;
                        best_dist = i - c;
                        if l == max {
                            break;
                        }
                    }
                    let back = chain_dist[c & ring_mask];
                    cand = if back == 0 { NO_POS } else { cand - back as u64 };
                    probes += 1;
                }
            }
            if best_len >= self.min_match {
                let len_code = (best_len - self.min_match + 1) as u64;
                debug_assert!(len_code >= 1 && len_code <= MAX_LEN_CODE as u64);
                let field_bits = 6 + self.dist_bits;
                let field_bytes = field_bits.div_ceil(8);
                let packed = (len_code << self.dist_bits) | (best_dist as u64 - 1);
                let shifted = packed << (field_bytes * 8 - field_bits);
                out.push(MARKER);
                for b in (0..field_bytes).rev() {
                    out.push((shifted >> (b * 8)) as u8);
                }
                stats.matches += 1;
                stats.matched_bytes += best_len;
                for p in i..i + best_len {
                    insert(p, data, heads, chain_dist);
                }
                i += best_len;
            } else {
                if data[i] == MARKER {
                    out.push(MARKER);
                    out.push(0x00);
                } else {
                    out.push(data[i]);
                }
                stats.literals += 1;
                insert(i, data, heads, chain_dist);
                i += 1;
            }
        }
        stats
    }

    /// Restores the original bytes from an LZ stream produced by
    /// [`compress`](Self::compress).
    ///
    /// # Panics
    ///
    /// Panics on a malformed stream (truncated match fields, distances
    /// reaching before the start of output).
    pub fn decompress(&self, stream: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.decompress_into(stream, &mut out);
        out
    }

    /// [`decompress`](Self::decompress) into a caller-owned buffer
    /// (cleared first) — the allocation-free variant for codec scratch.
    ///
    /// # Panics
    ///
    /// Panics on a malformed stream (the
    /// [`try_decompress_into`](Self::try_decompress_into) error, formatted).
    pub fn decompress_into(&self, stream: &[u8], out: &mut Vec<u8>) {
        if let Err(e) = self.try_decompress_into(stream, out, usize::MAX) {
            panic!("{e}");
        }
    }

    /// Fallible decompression for untrusted streams: truncated escape
    /// sequences and match fields, zero length codes, and back-references
    /// past the start of output are error values, and the output never
    /// grows past `cap` bytes (a corrupt stream must not allocate
    /// unboundedly). `out` is cleared first and may hold a partial prefix
    /// on error.
    pub fn try_decompress_into(
        &self,
        stream: &[u8],
        out: &mut Vec<u8>,
        cap: usize,
    ) -> Result<(), CodecError> {
        out.clear();
        out.reserve(stream.len() * 2);
        let field_bits = 6 + self.dist_bits;
        let field_bytes = field_bits.div_ceil(8) as usize;
        let mut i = 0;
        while i < stream.len() {
            let b = stream[i];
            i += 1;
            if b != MARKER {
                if out.len() >= cap {
                    return Err(CodecError::OutputOverflow { context: "LZ literal", cap });
                }
                out.push(b);
                continue;
            }
            let &next =
                stream.get(i).ok_or(CodecError::UnexpectedEnd { context: "LZ escape sequence" })?;
            if next == 0 {
                if out.len() >= cap {
                    return Err(CodecError::OutputOverflow { context: "LZ literal", cap });
                }
                out.push(MARKER);
                i += 1;
                continue;
            }
            if i + field_bytes > stream.len() {
                return Err(CodecError::UnexpectedEnd { context: "LZ match field" });
            }
            let mut packed: u64 = 0;
            for k in 0..field_bytes {
                packed = (packed << 8) | stream[i + k] as u64;
            }
            i += field_bytes;
            packed >>= field_bytes as u32 * 8 - field_bits;
            let len_code = (packed >> self.dist_bits) as usize;
            let dist = (packed & ((1 << self.dist_bits) - 1)) as usize + 1;
            if len_code == 0 {
                return Err(CodecError::InvalidCode { context: "LZ length code", value: 0 });
            }
            let len = len_code + self.min_match - 1;
            if dist > out.len() {
                return Err(CodecError::BadBackref { distance: dist, produced: out.len() });
            }
            if len > cap.saturating_sub(out.len()) {
                return Err(CodecError::OutputOverflow { context: "LZ match", cap });
            }
            let start = out.len() - dist;
            if dist >= len {
                out.extend_from_within(start..start + len);
            } else {
                // Overlapping copy (RLE-style): byte-serial by definition.
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            }
        }
        Ok(())
    }
}

impl Default for LzCodec {
    fn default() -> Self {
        Self::memory_specialized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_round_trip() {
        let lz = LzCodec::memory_specialized();
        let (out, stats) = lz.compress(&[]);
        assert!(out.is_empty());
        assert_eq!(stats, LzStats::default());
        assert!(lz.decompress(&out).is_empty());
    }

    #[test]
    fn literal_only_round_trip() {
        let lz = LzCodec::memory_specialized();
        let data: Vec<u8> = (0..200u8).collect();
        let (out, stats) = lz.compress(&data);
        assert_eq!(stats.matches, 0);
        assert_eq!(lz.decompress(&out), data);
    }

    #[test]
    fn marker_bytes_escape_correctly() {
        let lz = LzCodec::memory_specialized();
        let data = vec![0xFFu8, 1, 0xFF, 2, 0xFF, 3, 7, 8, 9, 10, 11, 12];
        let (out, _) = lz.compress(&data);
        assert_eq!(lz.decompress(&out), data);
    }

    #[test]
    fn repetitive_data_compresses() {
        let lz = LzCodec::memory_specialized();
        let data = b"the quick brown fox ".repeat(50);
        let (out, stats) = lz.compress(&data);
        assert!(out.len() < data.len() / 3, "len {} of {}", out.len(), data.len());
        assert!(stats.matched_bytes > data.len() / 2);
        assert_eq!(lz.decompress(&out), data);
    }

    #[test]
    fn overlapping_match_round_trip() {
        // RLE-style data forces dist < len copies.
        let lz = LzCodec::memory_specialized();
        let mut data = vec![7u8; 300];
        data.extend_from_slice(&[1, 2, 3]);
        let (out, _) = lz.compress(&data);
        assert!(out.len() < 30);
        assert_eq!(lz.decompress(&out), data);
    }

    #[test]
    fn matches_respect_window() {
        let lz = LzCodec::new(256);
        // Repetition separated by more than the window: no match possible.
        let mut data = b"0123456789abcdef".repeat(2);
        data.extend((0..512usize).map(|i| (i % 251) as u8));
        data.extend_from_slice(&b"0123456789abcdef".repeat(2));
        let (out, _) = lz.compress(&data);
        assert_eq!(lz.decompress(&out), data);
    }

    #[test]
    fn window_sizes_produce_valid_streams() {
        for w in [256, 512, 1024, 2048, 4096, 32768] {
            let lz = LzCodec::new(w);
            let data: Vec<u8> = (0..4096u32).map(|i| ((i * i) >> 3) as u8).collect();
            let (out, _) = lz.compress(&data);
            assert_eq!(lz.decompress(&out), data, "window {w}");
        }
    }

    #[test]
    #[should_panic(expected = "window must be a power of two")]
    fn rejects_bad_window() {
        let _ = LzCodec::new(1000);
    }

    #[test]
    fn bigger_window_wins_on_long_range_repetition() {
        // Two copies of a 1.5 KiB chunk: only a window larger than the
        // chunk can see the repetition.
        let chunk: Vec<u8> =
            (0..1536u64).map(|i| ((i.wrapping_mul(2654435761)) >> 13) as u8).collect();
        let mut data = chunk.clone();
        data.extend_from_slice(&chunk);
        let small = LzCodec::new(256).compress(&data).0.len();
        let large = LzCodec::new(4096).compress(&data).0.len();
        assert!(large < small, "large {large} vs small {small}");
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        // One scratch across pages and window sizes must give the same
        // streams as fresh scratch every time.
        let mut scratch = LzScratch::new();
        let pages: Vec<Vec<u8>> = (0..6u64)
            .map(|s| {
                let mut x = s.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                (0..4096)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        (x >> 16) as u8 & 0x3F
                    })
                    .collect()
            })
            .collect();
        for w in [1024usize, 32768, 1024] {
            let lz = LzCodec::new(w);
            for page in &pages {
                let mut out = Vec::new();
                let stats = lz.compress_with(page, &mut scratch, &mut out);
                let (fresh, fresh_stats) = lz.compress(page);
                assert_eq!(out, fresh, "window {w}");
                assert_eq!(stats, fresh_stats);
            }
        }
    }

    /// Regression for the `i32` hash-chain overflow: positions past 2 GiB
    /// became negative and every match was silently dropped (and `chain_at`
    /// was sized per input byte). The base knob artificially lowers the
    /// overflow boundary into reach: the stream must be identical no
    /// matter where in the address space it starts.
    #[test]
    fn chains_survive_positions_beyond_2gib() {
        let lz = LzCodec::memory_specialized();
        let data = b"the quick brown fox jumps over the lazy dog; ".repeat(60);
        let mut scratch = LzScratch::new();
        let mut reference = Vec::new();
        let ref_stats = lz.compress_with(&data, &mut scratch, &mut reference);
        assert!(ref_stats.matches > 0, "corpus must contain matches");
        for base in [
            (1u64 << 31) - (data.len() as u64 / 2), // straddles the old i32 cap
            (1u64 << 32) - (data.len() as u64 / 2), // straddles a u32 cap
            u64::from(u32::MAX) * 16,               // far past any 32-bit cap
        ] {
            let mut out = Vec::new();
            let stats = lz.compress_with_base(&data, &mut scratch, &mut out, base);
            assert_eq!(out, reference, "base {base:#x}");
            assert_eq!(stats, ref_stats, "base {base:#x}");
        }
    }

    #[test]
    fn malformed_streams_are_typed_errors() {
        let lz = LzCodec::memory_specialized(); // field_bytes = 2
        let mut out = Vec::new();
        // Marker with nothing after it.
        assert_eq!(
            lz.try_decompress_into(&[0xFF], &mut out, 4096),
            Err(CodecError::UnexpectedEnd { context: "LZ escape sequence" })
        );
        // Marker + one byte of a two-byte match field.
        assert_eq!(
            lz.try_decompress_into(&[0xFF, 0x40], &mut out, 4096),
            Err(CodecError::UnexpectedEnd { context: "LZ match field" })
        );
        // Nonzero first field byte whose 6-bit length code is still zero.
        assert_eq!(
            lz.try_decompress_into(&[0xFF, 0x01, 0x00], &mut out, 4096),
            Err(CodecError::InvalidCode { context: "LZ length code", value: 0 })
        );
        // A back-reference with no output produced yet.
        assert_eq!(
            lz.try_decompress_into(&[0xFF, 0x44, 0x02], &mut out, 4096),
            Err(CodecError::BadBackref { distance: 3, produced: 0 })
        );
        // Output cap: a valid RLE stream that would exceed 4 bytes.
        let data = vec![9u8; 300];
        let (stream, _) = lz.compress(&data);
        assert_eq!(
            lz.try_decompress_into(&stream, &mut out, 4),
            Err(CodecError::OutputOverflow { context: "LZ match", cap: 4 })
        );
        // The same stream under a sufficient cap round-trips.
        lz.try_decompress_into(&stream, &mut out, 4096).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn chain_ring_is_bounded_by_window() {
        // The scratch must hold `window` chain slots, not one per byte:
        // compress inputs much longer than the window and check the ring
        // never grew.
        let lz = LzCodec::new(256);
        let data: Vec<u8> = (0..64 * 1024u32).map(|i| ((i * 31) >> 3) as u8).collect();
        let mut scratch = LzScratch::new();
        let mut out = Vec::new();
        lz.compress_with(&data, &mut scratch, &mut out);
        assert_eq!(scratch.chain_dist.len(), 256);
        assert_eq!(lz.decompress(&out), data);
    }
}
