//! LZ77 with a sliding-window CAM and a 256-symbol output alphabet
//! (paper §V-B2, §V-B4).
//!
//! Hardware performs match search with a content-addressable memory holding
//! the most recent `window` bytes (1 KiB by default after the paper's design
//! space exploration; 32 KiB in IBM's general-purpose design). Match
//! *selection* is greedy, not RFC 1951 "lazy matching" — the paper
//! simplifies this deliberately.
//!
//! ## Output format
//!
//! Because the reduced Huffman stage consumes **bytes**, the LZ output is a
//! byte stream over a space-efficient 256-symbol alphabet (the paper's
//! departure from RFC 1951's 286-symbol alphabet):
//!
//! * any byte other than `0xFF` — a literal;
//! * `0xFF 0x00` — an escaped literal `0xFF`;
//! * `0xFF` + packed match: a big-endian field of `6 + dist_bits` bits,
//!   zero-padded to whole bytes, whose top 6 bits are `len - min_match + 1`
//!   (never zero, which disambiguates from the escaped literal) and whose
//!   low `dist_bits` bits are `distance - 1`.
//!
//! `dist_bits = log2(window)`, so a 1 KiB CAM yields 3-byte matches and the
//! 32 KiB software-deflate window yields 4-byte matches.

/// Maximum match length representable in the 6-bit length field.
const MAX_LEN_CODE: u32 = 63;
/// Escape marker byte.
const MARKER: u8 = 0xFF;

/// Token-level statistics from one compression pass, consumed by the cycle
/// model (pipeline stalls depend on match structure, §V-B4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LzStats {
    /// Number of literal tokens emitted.
    pub literals: usize,
    /// Number of match tokens emitted.
    pub matches: usize,
    /// Total input bytes covered by matches.
    pub matched_bytes: usize,
}

/// An LZ77 codec with a configurable sliding window.
///
/// # Examples
///
/// ```
/// use tmcc_deflate::LzCodec;
///
/// let lz = LzCodec::new(1024);
/// let data = b"abcabcabcabcabcabcabcabc".repeat(8);
/// let (out, stats) = lz.compress(&data);
/// assert!(out.len() < data.len());
/// assert!(stats.matches > 0);
/// assert_eq!(lz.decompress(&out), data);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LzCodec {
    window: usize,
    dist_bits: u32,
    min_match: usize,
}

impl LzCodec {
    /// Creates a codec with the given sliding-window (CAM) size in bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `window` is a power of two in `[256, 65536]`.
    pub fn new(window: usize) -> Self {
        assert!(
            window.is_power_of_two() && (256..=65536).contains(&window),
            "window must be a power of two in [256, 65536]"
        );
        let dist_bits = window.trailing_zeros();
        let match_bytes = 1 + (6 + dist_bits).div_ceil(8) as usize;
        // A match must beat its own encoding by at least one byte.
        let min_match = match_bytes + 1;
        Self { window, dist_bits, min_match }
    }

    /// The paper's memory-specialized configuration: a 1 KiB CAM.
    pub fn memory_specialized() -> Self {
        Self::new(1024)
    }

    /// The sliding-window size in bytes.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Minimum length of an emitted match.
    pub fn min_match(&self) -> usize {
        self.min_match
    }

    /// Longest representable match.
    pub fn max_match(&self) -> usize {
        self.min_match + MAX_LEN_CODE as usize - 1
    }

    /// Compresses `data`, returning the LZ byte stream and token statistics.
    pub fn compress(&self, data: &[u8]) -> (Vec<u8>, LzStats) {
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        let mut stats = LzStats::default();
        // Hash chains over 4-byte prefixes model the CAM search.
        const HASH_BITS: u32 = 12;
        let mut heads: Vec<i32> = vec![-1; 1 << HASH_BITS];
        let mut chain_at: Vec<i32> = vec![-1; data.len()];

        let hash = |d: &[u8]| -> usize {
            let v = u32::from_le_bytes([d[0], d[1], d[2], d[3]]);
            (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
        };

        let insert = |pos: usize, data: &[u8], heads: &mut Vec<i32>, chain_at: &mut Vec<i32>| {
            if pos + 4 <= data.len() {
                let h = hash(&data[pos..]);
                chain_at[pos] = heads[h];
                heads[h] = pos as i32;
            }
        };
        let mut i = 0;
        while i < data.len() {
            let mut best_len = 0usize;
            let mut best_dist = 0usize;
            if i + 4 <= data.len() {
                let h = hash(&data[i..]);
                let mut cand = heads[h];
                let floor = i.saturating_sub(self.window);
                let mut probes = 0;
                while cand >= 0 && (cand as usize) >= floor && probes < 64 {
                    let c = cand as usize;
                    let max = (data.len() - i).min(self.max_match());
                    let mut l = 0;
                    while l < max && data[c + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = i - c;
                        if l == max {
                            break;
                        }
                    }
                    cand = chain_at[c];
                    probes += 1;
                }
            }
            if best_len >= self.min_match {
                let len_code = (best_len - self.min_match + 1) as u64;
                debug_assert!(len_code >= 1 && len_code <= MAX_LEN_CODE as u64);
                let field_bits = 6 + self.dist_bits;
                let field_bytes = field_bits.div_ceil(8);
                let packed = (len_code << self.dist_bits) | (best_dist as u64 - 1);
                let shifted = packed << (field_bytes * 8 - field_bits);
                out.push(MARKER);
                for b in (0..field_bytes).rev() {
                    out.push((shifted >> (b * 8)) as u8);
                }
                stats.matches += 1;
                stats.matched_bytes += best_len;
                for p in i..i + best_len {
                    insert(p, data, &mut heads, &mut chain_at);
                }
                i += best_len;
            } else {
                if data[i] == MARKER {
                    out.push(MARKER);
                    out.push(0x00);
                } else {
                    out.push(data[i]);
                }
                stats.literals += 1;
                insert(i, data, &mut heads, &mut chain_at);
                i += 1;
            }
        }
        (out, stats)
    }

    /// Restores the original bytes from an LZ stream produced by
    /// [`compress`](Self::compress).
    ///
    /// # Panics
    ///
    /// Panics on a malformed stream (truncated match fields, distances
    /// reaching before the start of output).
    pub fn decompress(&self, stream: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(stream.len() * 2);
        let field_bits = 6 + self.dist_bits;
        let field_bytes = field_bits.div_ceil(8) as usize;
        let mut i = 0;
        while i < stream.len() {
            let b = stream[i];
            i += 1;
            if b != MARKER {
                out.push(b);
                continue;
            }
            assert!(i < stream.len(), "truncated escape sequence");
            if stream[i] == 0 {
                out.push(MARKER);
                i += 1;
                continue;
            }
            assert!(i + field_bytes <= stream.len(), "truncated match field");
            let mut packed: u64 = 0;
            for k in 0..field_bytes {
                packed = (packed << 8) | stream[i + k] as u64;
            }
            i += field_bytes;
            packed >>= field_bytes as u32 * 8 - field_bits;
            let len_code = (packed >> self.dist_bits) as usize;
            let dist = (packed & ((1 << self.dist_bits) - 1)) as usize + 1;
            assert!(len_code >= 1, "invalid zero length code");
            let len = len_code + self.min_match - 1;
            assert!(dist <= out.len(), "match distance reaches before output");
            let start = out.len() - dist;
            for k in 0..len {
                let byte = out[start + k];
                out.push(byte);
            }
        }
        out
    }
}

impl Default for LzCodec {
    fn default() -> Self {
        Self::memory_specialized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_round_trip() {
        let lz = LzCodec::memory_specialized();
        let (out, stats) = lz.compress(&[]);
        assert!(out.is_empty());
        assert_eq!(stats, LzStats::default());
        assert!(lz.decompress(&out).is_empty());
    }

    #[test]
    fn literal_only_round_trip() {
        let lz = LzCodec::memory_specialized();
        let data: Vec<u8> = (0..200u8).collect();
        let (out, stats) = lz.compress(&data);
        assert_eq!(stats.matches, 0);
        assert_eq!(lz.decompress(&out), data);
    }

    #[test]
    fn marker_bytes_escape_correctly() {
        let lz = LzCodec::memory_specialized();
        let data = vec![0xFFu8, 1, 0xFF, 2, 0xFF, 3, 7, 8, 9, 10, 11, 12];
        let (out, _) = lz.compress(&data);
        assert_eq!(lz.decompress(&out), data);
    }

    #[test]
    fn repetitive_data_compresses() {
        let lz = LzCodec::memory_specialized();
        let data = b"the quick brown fox ".repeat(50);
        let (out, stats) = lz.compress(&data);
        assert!(out.len() < data.len() / 3, "len {} of {}", out.len(), data.len());
        assert!(stats.matched_bytes > data.len() / 2);
        assert_eq!(lz.decompress(&out), data);
    }

    #[test]
    fn overlapping_match_round_trip() {
        // RLE-style data forces dist < len copies.
        let lz = LzCodec::memory_specialized();
        let mut data = vec![7u8; 300];
        data.extend_from_slice(&[1, 2, 3]);
        let (out, _) = lz.compress(&data);
        assert!(out.len() < 30);
        assert_eq!(lz.decompress(&out), data);
    }

    #[test]
    fn matches_respect_window() {
        let lz = LzCodec::new(256);
        // Repetition separated by more than the window: no match possible.
        let mut data = b"0123456789abcdef".repeat(2);
        data.extend((0..512usize).map(|i| (i % 251) as u8));
        data.extend_from_slice(&b"0123456789abcdef".repeat(2));
        let (out, _) = lz.compress(&data);
        assert_eq!(lz.decompress(&out), data);
    }

    #[test]
    fn window_sizes_produce_valid_streams() {
        for w in [256, 512, 1024, 2048, 4096, 32768] {
            let lz = LzCodec::new(w);
            let data: Vec<u8> = (0..4096u32).map(|i| ((i * i) >> 3) as u8).collect();
            let (out, _) = lz.compress(&data);
            assert_eq!(lz.decompress(&out), data, "window {w}");
        }
    }

    #[test]
    #[should_panic(expected = "window must be a power of two")]
    fn rejects_bad_window() {
        let _ = LzCodec::new(1000);
    }

    #[test]
    fn bigger_window_wins_on_long_range_repetition() {
        // Two copies of a 1.5 KiB chunk: only a window larger than the
        // chunk can see the repetition.
        let chunk: Vec<u8> =
            (0..1536u64).map(|i| ((i.wrapping_mul(2654435761)) >> 13) as u8).collect();
        let mut data = chunk.clone();
        data.extend_from_slice(&chunk);
        let small = LzCodec::new(256).compress(&data).0.len();
        let large = LzCodec::new(4096).compress(&data).0.len();
        assert!(large < small, "large {large} vs small {small}");
    }
}
