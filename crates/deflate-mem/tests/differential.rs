//! Differential tests against streams recorded with the pre-LUT codec
//! (`tests/fixtures/old_codec_streams.txt`, written by
//! `examples/record_streams.rs`).
//!
//! Two guarantees are pinned per fixture line:
//!
//! 1. **Decoder compatibility** — the table-driven decoders consume
//!    historically produced streams and recover the original pages.
//! 2. **Encoder stability** — re-compressing the same page with the
//!    current codec reproduces the recorded stream byte-for-byte, so
//!    golden ratio results can never drift from a "pure speedup".

use tmcc_deflate::{
    CodecError, CompressedPage, DeflateScratch, FullHuffman, MemDeflate, PageMode, ReducedHuffman,
    SoftwareDeflate,
};

/// Deterministic page generator shared verbatim with
/// `examples/record_streams.rs`: xorshift64 bytes shaped into the regimes
/// real dumps contain.
fn fixture_page(seed: u64, kind: u8) -> Vec<u8> {
    let mut page = vec![0u8; 4096];
    let mut x = seed | 1;
    let mut rng = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    match kind {
        0 => {} // all-zero page
        1 => {
            // Repeating text-like motif: the LzHuffman common case.
            let motif = b"key=value; ptr=0x7fffaa00; flags=rw-; n=0001732; ";
            for (i, b) in page.iter_mut().enumerate() {
                *b = motif[i % motif.len()];
            }
            for _ in 0..6 {
                let i = (rng() % 4096) as usize;
                page[i] = rng() as u8;
            }
        }
        2 => {
            // Near-uniform bytes with internal repetition: LZ wins but
            // Huffman expands -> dynamic skip (LzOnly).
            for (i, b) in page.iter_mut().enumerate().take(2048) {
                *b = ((i * 37) % 251) as u8;
            }
            let (lo, hi) = page.split_at_mut(2048);
            hi.copy_from_slice(lo);
        }
        3 => {
            // Random page: stored Raw.
            for b in page.iter_mut() {
                *b = rng() as u8;
            }
        }
        _ => {
            // Pointer-array-like page.
            let base = rng() & 0x0000_7fff_ffff_f000;
            for i in 0..512usize {
                let v = base + (rng() % 0x1000);
                page[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
            }
        }
    }
    page
}

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "odd hex length");
    (0..s.len() / 2).map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("hex")).collect()
}

struct Fixture {
    codec: String,
    seed: u64,
    kind: u8,
    extra: String,
    stream: Vec<u8>,
}

fn load_fixtures() -> Vec<Fixture> {
    let text = include_str!("fixtures/old_codec_streams.txt");
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut f = l.split_whitespace();
            let codec = f.next().expect("codec").to_string();
            let seed = f.next().expect("seed").parse().expect("seed");
            let kind = f.next().expect("kind").parse().expect("kind");
            let extra = f.next().expect("extra").to_string();
            // Empty payloads (zero pages) serialize as a missing field.
            let stream = unhex(f.next().unwrap_or(""));
            Fixture { codec, seed, kind, extra, stream }
        })
        .collect()
}

fn page_mode(tag: u8) -> PageMode {
    match tag {
        0 => PageMode::Zero,
        1 => PageMode::LzHuffman,
        2 => PageMode::LzOnly,
        3 => PageMode::Raw,
        other => panic!("unknown mode tag {other}"),
    }
}

#[test]
fn fixtures_cover_every_recorded_codec() {
    let fixtures = load_fixtures();
    for codec in ["reduced", "full", "mem", "software"] {
        assert!(fixtures.iter().any(|f| f.codec == codec), "no {codec} fixtures");
    }
    // The mem fixtures must exercise zero, LzHuffman and Raw pages.
    for mode in [0u8, 1, 3] {
        assert!(
            fixtures
                .iter()
                .filter(|f| f.codec == "mem")
                .any(|f| f.extra.split(':').next() == Some(&mode.to_string())),
            "no mem fixture with mode {mode}"
        );
    }
}

#[test]
fn reduced_huffman_decodes_old_streams() {
    for f in load_fixtures().iter().filter(|f| f.codec == "reduced") {
        let page = fixture_page(f.seed, f.kind);
        let n: usize = f.extra.parse().expect("page len");
        assert_eq!(n, page.len());
        let (tree, rest) = ReducedHuffman::read_tree(&f.stream);
        assert_eq!(tree.decode(rest, n), page, "seed {} kind {}", f.seed, f.kind);
        // Encoder stability: same tree, same bits.
        assert_eq!(tree.encode(&page), f.stream, "seed {} kind {}", f.seed, f.kind);
        let fresh = ReducedHuffman::build(&page, 15);
        assert_eq!(fresh.encode(&page), f.stream, "rebuilt tree, seed {}", f.seed);
    }
}

#[test]
fn full_huffman_decodes_old_streams() {
    for f in load_fixtures().iter().filter(|f| f.codec == "full") {
        let page = fixture_page(f.seed, f.kind);
        let n: usize = f.extra.parse().expect("page len");
        assert_eq!(FullHuffman::decode(&f.stream, n), page, "seed {} kind {}", f.seed, f.kind);
        assert_eq!(FullHuffman::build(&page).encode(&page), f.stream, "seed {}", f.seed);
    }
}

#[test]
fn mem_deflate_decodes_old_pages() {
    let mem = MemDeflate::default();
    for f in load_fixtures().iter().filter(|f| f.codec == "mem") {
        let page = fixture_page(f.seed, f.kind);
        let (mode_tag, lz_len) = f.extra.split_once(':').expect("mode:lz_len");
        let mode = page_mode(mode_tag.parse().expect("mode"));
        let lz_len: usize = lz_len.parse().expect("lz_len");
        let stored = CompressedPage::from_parts(mode, page.len(), lz_len, f.stream.clone());
        assert_eq!(mem.decompress_page(&stored), page, "seed {} kind {}", f.seed, f.kind);
        // Encoder stability end to end: mode, lz_len and payload bytes.
        let fresh = mem.compress_page(&page);
        assert_eq!(fresh.mode(), mode, "seed {}", f.seed);
        assert_eq!(fresh.lz_len(), lz_len, "seed {}", f.seed);
        assert_eq!(fresh.payload(), &f.stream[..], "seed {} kind {}", f.seed, f.kind);
    }
}

/// Corrupting the recorded streams must produce *typed* decode errors —
/// never panics — from the same decoders that accept the clean streams.
/// (These assertions used to be impossible: the old decoders aborted.)
#[test]
fn corrupted_old_streams_yield_typed_errors() {
    let mem = MemDeflate::default();
    let mut scratch = DeflateScratch::new();
    let mut out = Vec::new();
    for f in load_fixtures() {
        match f.codec.as_str() {
            "reduced" => {
                // A truncated tree header is UnexpectedEnd, typed.
                assert_eq!(
                    ReducedHuffman::try_read_tree(&f.stream[..10]).unwrap_err(),
                    CodecError::UnexpectedEnd { context: "reduced tree header" },
                    "seed {}",
                    f.seed
                );
                // Clean stream still decodes through the fallible path.
                let n: usize = f.extra.parse().expect("page len");
                let (tree, rest) = ReducedHuffman::try_read_tree(&f.stream).expect("clean tree");
                assert_eq!(
                    tree.try_decode(rest, n).expect("clean decode"),
                    fixture_page(f.seed, f.kind)
                );
            }
            "full" => {
                assert_eq!(
                    FullHuffman::try_decode(&f.stream[..64], 16).unwrap_err(),
                    CodecError::UnexpectedEnd { context: "full tree header" },
                    "seed {}",
                    f.seed
                );
            }
            "mem" => {
                let (mode_tag, lz_len) = f.extra.split_once(':').expect("mode:lz_len");
                let mode = page_mode(mode_tag.parse().expect("mode"));
                let lz_len: usize = lz_len.parse().expect("lz_len");
                if mode == PageMode::Zero {
                    continue;
                }
                // Truncate the payload hard: every mode detects it.
                let cut = f.stream.len() / 2;
                let bad = CompressedPage::from_parts(mode, 4096, lz_len, f.stream[..cut].to_vec());
                let err = mem
                    .try_decompress_page_into(&bad, &mut scratch, &mut out)
                    .expect_err("truncated page must not decode");
                assert!(
                    matches!(
                        err,
                        CodecError::UnexpectedEnd { .. }
                            | CodecError::InvalidCode { .. }
                            | CodecError::LengthMismatch { .. }
                            | CodecError::BadBackref { .. }
                            | CodecError::OutputOverflow { .. }
                    ),
                    "seed {}: {err}",
                    f.seed
                );
            }
            "software" => {
                let sw = SoftwareDeflate::new();
                assert!(sw.try_decompress(&f.stream[..f.stream.len() / 2]).is_err());
            }
            other => panic!("unknown codec {other}"),
        }
    }
}

#[test]
fn software_deflate_decodes_old_dumps() {
    let sw = SoftwareDeflate::new();
    for f in load_fixtures().iter().filter(|f| f.codec == "software") {
        let mut dump = Vec::new();
        for (seed, kind) in [(21u64, 1u8), (22, 4), (23, 2), (24, 1)] {
            dump.extend_from_slice(&fixture_page(seed, kind));
        }
        let n: usize = f.extra.parse().expect("dump len");
        assert_eq!(n, dump.len());
        assert_eq!(sw.decompress(&f.stream), dump);
        assert_eq!(sw.compress(&dump), f.stream, "software stream drifted");
    }
}
