//! Property tests: the Deflate stack must restore any page bit-exactly —
//! the reproduction of the paper's RTL functional verification ("we verify
//! that each non-zero 4 KB page in the memory dumps are same as original
//! after compression and decompression").

use proptest::prelude::*;
use tmcc_deflate::{
    DeflateParams, DeflateScratch, LzCodec, LzScratch, MemDeflate, PageMode, ReducedHuffman,
    SoftwareDeflate,
};

/// Pages drawn from a mixture of regimes: runs, strided records, random
/// tails — the kinds of content real memory dumps contain.
fn arb_page() -> impl Strategy<Value = Vec<u8>> {
    (any::<u64>(), 0u8..4, prop::collection::vec(any::<u8>(), 8..64)).prop_map(
        |(seed, kind, motif)| {
            let mut page = vec![0u8; 4096];
            let mut x = seed | 1;
            let mut rng = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            match kind {
                0 => {
                    // Repeating motif with occasional corruption.
                    for (i, b) in page.iter_mut().enumerate() {
                        *b = motif[i % motif.len()];
                    }
                    for _ in 0..8 {
                        let i = (rng() % 4096) as usize;
                        page[i] = rng() as u8;
                    }
                }
                1 => {
                    // Sparse page: mostly zero with scattered values.
                    for _ in 0..200 {
                        let i = (rng() % 4096) as usize;
                        page[i] = rng() as u8;
                    }
                }
                2 => {
                    // Pointer-array-like: 8-byte values sharing high bytes.
                    let base = rng() & 0x0000_7fff_ffff_f000;
                    for i in 0..512usize {
                        let v = base + (rng() % 0x1000);
                        page[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
                    }
                }
                _ => {
                    // Random page.
                    for b in page.iter_mut() {
                        *b = rng() as u8;
                    }
                }
            }
            page
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lz_round_trips(page in arb_page()) {
        let lz = LzCodec::memory_specialized();
        let (out, _) = lz.compress(&page);
        prop_assert_eq!(lz.decompress(&out), page);
    }

    #[test]
    fn reduced_huffman_round_trips(page in arb_page()) {
        let tree = ReducedHuffman::build(&page, 15);
        let enc = tree.encode(&page);
        let (tree2, rest) = ReducedHuffman::read_tree(&enc);
        prop_assert_eq!(tree2.decode(rest, page.len()), page);
    }

    #[test]
    fn mem_deflate_round_trips(page in arb_page()) {
        let codec = MemDeflate::default();
        let c = codec.compress_page(&page);
        prop_assert_eq!(codec.decompress_page(&c), page);
        // Stored size never exceeds raw + header.
        prop_assert!(c.stored_len() <= 4096 + 3);
    }

    #[test]
    fn mem_deflate_round_trips_across_design_space(
        page in arb_page(),
        cam_pow in 8u32..13,
        depth in 4u32..16,
        skip in any::<bool>(),
    ) {
        let params = DeflateParams::new()
            .cam_bytes(1 << cam_pow)
            .max_tree_depth(depth)
            .dynamic_skip(skip);
        let codec = MemDeflate::new(params);
        let c = codec.compress_page(&page);
        prop_assert_eq!(codec.decompress_page(&c), page);
    }

    #[test]
    fn software_deflate_round_trips(page in arb_page()) {
        let sw = SoftwareDeflate::new();
        let c = sw.compress(&page);
        prop_assert_eq!(sw.decompress(&c), page);
    }

    /// Every page mode the codec can choose round-trips and keeps its
    /// invariants: exact bit accounting, stored-size bounds, and agreement
    /// between the materialized payload and the analytic size query.
    #[test]
    fn page_modes_keep_their_invariants(page in arb_mode_page(), skip in any::<bool>()) {
        let codec = MemDeflate::new(DeflateParams::new().dynamic_skip(skip));
        let c = codec.compress_page(&page);
        prop_assert_eq!(codec.decompress_page(&c), page);
        prop_assert_eq!(codec.compressed_size(&page), c.stored_len());
        match c.mode() {
            PageMode::Zero => {
                prop_assert_eq!(c.payload_bits(), 0);
                prop_assert_eq!(c.stored_len(), 1);
            }
            PageMode::LzHuffman => {
                // Exact bits: within the final payload byte, never past it.
                prop_assert_eq!(c.payload().len(), c.payload_bits().div_ceil(8));
                prop_assert!(c.payload_bits() <= c.payload().len() * 8);
            }
            PageMode::LzOnly => {
                prop_assert_eq!(c.payload_bits(), c.payload().len() * 8);
                prop_assert_eq!(c.payload().len(), c.lz_len());
                prop_assert!(!skip || c.payload().len() <= c.lz_len());
            }
            PageMode::Raw => {
                prop_assert_eq!(c.payload(), &page[..]);
                prop_assert_eq!(c.payload_bits(), page.len() * 8);
            }
        }
    }

    /// A shared scratch must never leak state between pages: interleaving
    /// compressions of different pages through one scratch yields exactly
    /// the pages' fresh-scratch results.
    #[test]
    fn scratch_reuse_is_invisible(pages in prop::collection::vec(arb_mode_page(), 1..6)) {
        let codec = MemDeflate::default();
        let mut scratch = DeflateScratch::new();
        let mut lz_scratch = LzScratch::new();
        let lz = LzCodec::memory_specialized();
        for page in &pages {
            let reused = codec.compress_page_with(page, &mut scratch);
            let fresh = codec.compress_page_with(page, &mut DeflateScratch::new());
            prop_assert_eq!(&reused, &fresh);
            let mut out = Vec::new();
            codec.decompress_page_into(&reused, &mut scratch, &mut out);
            prop_assert_eq!(&out, page);
            let mut lz_out = Vec::new();
            lz.compress_with(page, &mut lz_scratch, &mut lz_out);
            prop_assert_eq!(lz_out, lz.compress(page).0);
        }
    }
}

/// [`arb_page`] plus shapes engineered to hit the rarer page modes:
/// all-zero pages ([`PageMode::Zero`]), random pages ([`PageMode::Raw`])
/// and periodic near-uniform pages that LZ compresses but Huffman expands
/// ([`PageMode::LzOnly`] under dynamic skip).
fn arb_mode_page() -> impl Strategy<Value = Vec<u8>> {
    (arb_page(), 0u8..5, 2u64..=255).prop_map(|(page, sel, m)| match sel {
        0 => vec![0u8; 4096],
        1 => (0..4096usize).map(|i| ((i as u64 * 37) % m) as u8).collect(),
        _ => page,
    })
}
