//! Corruption robustness: decoding a bit-flipped or byte-mutated stream
//! must return a typed error or a wrong-but-bounded output — never panic,
//! over-read, or allocate unboundedly.
//!
//! Two layers:
//!
//! * proptest properties drawing random pages, random corruptions;
//! * a deterministic fixed-seed fuzz loop (`fuzz_smoke`) sized by the
//!   `TMCC_FUZZ_CASES` environment variable so CI can run a bounded ~10k
//!   iteration smoke in release mode (see `scripts/ci.sh`).
//!
//! Both mutate *valid* streams produced by the real compressors, which
//! keeps the corrupted inputs structurally close to what a flipped DRAM
//! bit produces — far more penetrating than pure random bytes, which die
//! in the first header field.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tmcc_compression::{BestOfCodec, BlockCodec, CodecError, BLOCK_SIZE};
use tmcc_deflate::{
    CompressedPage, DeflateScratch, MemDeflate, PageMode, ReducedHuffman, SoftwareDeflate,
    PAGE_SIZE,
};

/// Deterministic page in one of the regimes real dumps contain.
fn gen_page(rng: &mut SmallRng) -> Vec<u8> {
    let mut page = vec![0u8; PAGE_SIZE];
    match rng.gen_range(0u8..5) {
        0 => {} // zero page
        1 => {
            let motif: Vec<u8> =
                (0..rng.gen_range(8usize..48)).map(|_| rng.gen_range(b'0'..b'z')).collect();
            for (i, b) in page.iter_mut().enumerate() {
                *b = motif[i % motif.len()];
            }
        }
        2 => {
            for _ in 0..rng.gen_range(20usize..400) {
                let i = rng.gen_range(0..PAGE_SIZE);
                page[i] = rng.gen();
            }
        }
        3 => {
            let base: u64 = rng.gen::<u64>() & 0x0000_7fff_ffff_f000;
            for i in 0..PAGE_SIZE / 8 {
                let v = base + rng.gen_range(0u64..0x1000);
                page[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
            }
        }
        _ => {
            for b in page.iter_mut() {
                *b = rng.gen();
            }
        }
    }
    page
}

/// Applies one corruption to `bytes`: a bit flip, a byte splat, a
/// truncation, or an extension. Returns false when the stream is too
/// short to corrupt that way.
fn corrupt(bytes: &mut Vec<u8>, rng: &mut SmallRng) -> bool {
    match rng.gen_range(0u8..4) {
        0 => {
            if bytes.is_empty() {
                return false;
            }
            let bit = rng.gen_range(0..bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
        1 => {
            if bytes.is_empty() {
                return false;
            }
            let i = rng.gen_range(0..bytes.len());
            bytes[i] = rng.gen();
        }
        2 => {
            if bytes.is_empty() {
                return false;
            }
            let cut = rng.gen_range(0..bytes.len());
            bytes.truncate(cut);
        }
        _ => {
            let extra = rng.gen_range(1usize..16);
            for _ in 0..extra {
                bytes.push(rng.gen());
            }
        }
    }
    true
}

/// One fuzz case over the page pipeline: compress a real page, corrupt
/// the payload, decode fallibly. The decode must return `Ok` with exactly
/// `original_len` bytes or a typed `Err`; the scratch and output stay
/// bounded either way. Panics (the bug class this PR removes) propagate
/// out and fail the test.
fn page_case(rng: &mut SmallRng, codec: &MemDeflate, scratch: &mut DeflateScratch) {
    let page = gen_page(rng);
    let clean = codec.compress_page(&page);
    let mut payload = clean.payload().to_vec();
    if !corrupt(&mut payload, rng) {
        return;
    }
    // Occasionally corrupt the declared lengths too — metadata corruption.
    let original_len = if rng.gen_range(0u8..8) == 0 {
        rng.gen_range(1..=PAGE_SIZE)
    } else {
        clean.original_len()
    };
    let lz_len =
        if rng.gen_range(0u8..8) == 0 { rng.gen_range(0..=PAGE_SIZE) } else { clean.lz_len() };
    let bad = CompressedPage::from_parts(clean.mode(), original_len, lz_len, payload);
    let mut out = Vec::new();
    match codec.try_decompress_page_into(&bad, scratch, &mut out) {
        Ok(()) => assert_eq!(out.len(), original_len),
        Err(_) => assert!(out.len() <= original_len),
    }
}

/// One fuzz case over the block codecs (BDI/BPC/CPack/Zero composite).
fn block_case(rng: &mut SmallRng, codec: &BestOfCodec) {
    let mut block = [0u8; BLOCK_SIZE];
    match rng.gen_range(0u8..3) {
        0 => {}
        1 => {
            let v: u32 = rng.gen_range(0..4096);
            for (i, c) in block.chunks_exact_mut(4).enumerate() {
                c.copy_from_slice(&(v + i as u32).to_le_bytes());
            }
        }
        _ => {
            for b in block.iter_mut() {
                *b = rng.gen();
            }
        }
    }
    let Some(mut stream) = codec.compress(&block) else { return };
    if !corrupt(&mut stream, rng) {
        return;
    }
    // Ok-or-typed-Err; the output array is fixed-size so bounds are free.
    let _ = codec.try_decompress(&stream);
}

/// The CI fuzz smoke: a fixed seed, `TMCC_FUZZ_CASES` iterations
/// (default 2 000 for the plain `cargo test` run; `scripts/ci.sh` runs
/// 10 000+ in release). Zero panics over the whole loop is the pass
/// criterion; a seed in the failure message reproduces any case alone.
#[test]
fn fuzz_smoke() {
    let cases: u64 =
        std::env::var("TMCC_FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(2_000);
    let codec = MemDeflate::default();
    let blocks = BestOfCodec::new();
    let mut scratch = DeflateScratch::new();
    for case in 0..cases {
        let seed = 0x7A6C_5F00_u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = SmallRng::seed_from_u64(seed);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            page_case(&mut rng, &codec, &mut scratch);
            let mut rng2 = SmallRng::seed_from_u64(seed ^ 1);
            block_case(&mut rng2, &blocks);
        }));
        assert!(r.is_ok(), "fuzz case {case} (seed {seed:#x}) panicked");
    }
}

/// Sealed pages: every payload corruption is *detected* (CRC), so the
/// undetected-wrong-output case cannot exist once seals are on. This is
/// the integrity guarantee the recovery ladder builds on.
#[test]
fn seal_detects_every_payload_corruption() {
    let codec = MemDeflate::default();
    let mut scratch = DeflateScratch::new();
    let mut out = Vec::new();
    let mut detected = 0u32;
    for case in 0..500u64 {
        let mut rng = SmallRng::seed_from_u64(0xC4C_1000 + case);
        let page = gen_page(&mut rng);
        let clean = codec.compress_page(&page);
        if clean.payload().is_empty() {
            continue; // zero pages have no payload to corrupt
        }
        let seal = clean.seal(0);
        let mut bad = clean.clone();
        let bit = rng.gen_range(0..bad.payload().len() * 8);
        bad.payload_mut()[bit / 8] ^= 1 << (bit % 8);
        let err = codec
            .try_decompress_sealed(&bad, &seal, 0, &mut scratch, &mut out)
            .expect_err("a flipped payload bit must fail the seal");
        assert!(matches!(err, CodecError::ChecksumMismatch { .. }), "case {case}: {err}");
        detected += 1;
    }
    assert!(detected > 300, "corpus must exercise sealed pages, got {detected}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary corruption of a valid page stream: fallible decode never
    /// panics and output length is always bounded.
    #[test]
    fn corrupted_pages_never_panic(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let codec = MemDeflate::default();
        let mut scratch = DeflateScratch::new();
        page_case(&mut rng, &codec, &mut scratch);
    }

    /// Arbitrary corruption of valid block-codec streams.
    #[test]
    fn corrupted_blocks_never_panic(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        block_case(&mut rng, &BestOfCodec::new());
    }

    /// Pure-garbage inputs (not derived from any valid stream) against
    /// every decoder entry point reachable from attacker bytes.
    #[test]
    fn garbage_streams_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let codec = MemDeflate::default();
        let mut scratch = DeflateScratch::new();
        let mut out = Vec::new();
        for mode in [PageMode::LzHuffman, PageMode::LzOnly, PageMode::Raw] {
            let page = CompressedPage::from_parts(mode, PAGE_SIZE, bytes.len(), bytes.clone());
            let _ = codec.try_decompress_page_into(&page, &mut scratch, &mut out);
            prop_assert!(out.len() <= PAGE_SIZE);
        }
        let _ = SoftwareDeflate::new().try_decompress(&bytes);
        let _ = ReducedHuffman::try_read_tree(&bytes);
        let _ = BestOfCodec::new().try_decompress(&bytes);
    }
}
