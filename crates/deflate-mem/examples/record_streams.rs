//! Records compressed streams from the current codec into
//! `tests/fixtures/old_codec_streams.txt`, the corpus consumed by the
//! differential decoder test (`tests/differential.rs`).
//!
//! Run from the repo root whenever the *format* intentionally changes
//! (never for pure speedups — the point of the fixture is that decoder
//! rewrites keep consuming historically produced streams):
//!
//! ```bash
//! cargo run -p tmcc-deflate --example record_streams
//! ```

use std::fmt::Write as _;
use tmcc_deflate::{FullHuffman, MemDeflate, ReducedHuffman, SoftwareDeflate};

/// Deterministic page generator shared verbatim with the differential
/// test: xorshift64 bytes shaped into the regimes real dumps contain.
fn fixture_page(seed: u64, kind: u8) -> Vec<u8> {
    let mut page = vec![0u8; 4096];
    let mut x = seed | 1;
    let mut rng = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    match kind {
        0 => {} // all-zero page
        1 => {
            // Repeating text-like motif: the LzHuffman common case.
            let motif = b"key=value; ptr=0x7fffaa00; flags=rw-; n=0001732; ";
            for (i, b) in page.iter_mut().enumerate() {
                *b = motif[i % motif.len()];
            }
            for _ in 0..6 {
                let i = (rng() % 4096) as usize;
                page[i] = rng() as u8;
            }
        }
        2 => {
            // Near-uniform bytes with internal repetition: LZ wins but
            // Huffman expands -> dynamic skip (LzOnly).
            for (i, b) in page.iter_mut().enumerate().take(2048) {
                *b = ((i * 37) % 251) as u8;
            }
            let (lo, hi) = page.split_at_mut(2048);
            hi.copy_from_slice(lo);
        }
        3 => {
            // Random page: stored Raw.
            for b in page.iter_mut() {
                *b = rng() as u8;
            }
        }
        _ => {
            // Pointer-array-like page.
            let base = rng() & 0x0000_7fff_ffff_f000;
            for i in 0..512usize {
                let v = base + (rng() % 0x1000);
                page[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
            }
        }
    }
    page
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

fn main() {
    let mut out = String::new();
    out.push_str(
        "# kind seed page_kind extra stream_hex\n\
         # Recorded by examples/record_streams.rs; consumed by tests/differential.rs.\n",
    );
    let mem = MemDeflate::default();
    let sw = SoftwareDeflate::new();
    for (seed, kind) in
        [(11u64, 0u8), (12, 1), (13, 2), (14, 3), (15, 4), (16, 1), (17, 2), (18, 4)]
    {
        let page = fixture_page(seed, kind);
        // Reduced-Huffman stream (tree header + payload) over the raw page.
        let tree = ReducedHuffman::build(&page, 15);
        let enc = tree.encode(&page);
        let _ = writeln!(out, "reduced {seed} {kind} {} {}", page.len(), hex(&enc));
        // Full-Huffman stream over the raw page.
        let full = FullHuffman::build(&page);
        let fenc = full.encode(&page);
        let _ = writeln!(out, "full {seed} {kind} {} {}", page.len(), hex(&fenc));
        // End-to-end MemDeflate page: mode + lz_len + payload.
        let c = mem.compress_page(&page);
        let _ = writeln!(
            out,
            "mem {seed} {kind} {}:{} {}",
            c.mode() as u8,
            c.lz_len(),
            hex(c.payload())
        );
    }
    // A multi-page software-Deflate dump (32 KiB window spans pages).
    let mut dump = Vec::new();
    for (seed, kind) in [(21u64, 1u8), (22, 4), (23, 2), (24, 1)] {
        dump.extend_from_slice(&fixture_page(seed, kind));
    }
    let c = sw.compress(&dump);
    let _ = writeln!(out, "software 0 0 {} {}", dump.len(), hex(&c));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/old_codec_streams.txt");
    std::fs::write(path, out).expect("write fixture");
    println!("wrote {path}");
}
