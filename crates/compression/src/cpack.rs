//! CPack (Cache Packer) compression.
//!
//! Chen et al., "C-Pack: A High-Performance Microprocessor Cache Compression
//! Algorithm", IEEE TVLSI 2010 (paper reference [54]).
//!
//! Processes a block as 4-byte words against a 16-entry FIFO dictionary.
//! Pattern table (codes MSB-first, `z` = zero byte, `m` = dictionary match
//! byte, `x` = literal byte):
//!
//! | pattern | meaning                         | code                      |
//! |---------|---------------------------------|---------------------------|
//! | `zzzz`  | all-zero word                   | `00`                      |
//! | `xxxx`  | no match                        | `01` + 32-bit literal     |
//! | `mmmm`  | full dictionary match           | `10` + 4-bit index        |
//! | `mmxx`  | high 2 bytes match              | `1100` + 4-bit + 16 bits  |
//! | `zzzx`  | three zero bytes + literal byte | `1101` + 8 bits           |
//! | `mmmx`  | high 3 bytes match              | `1110` + 4-bit + 8 bits   |
//!
//! Words that are not fully matched (`xxxx`, `mmxx`, `mmmx`) are pushed into
//! the dictionary; the decompressor mirrors the exact same update rule, so
//! no dictionary is stored in the output.

use crate::bits::{BitReader, BitWriter};
use crate::{BlockCodec, CodecError, BLOCK_SIZE};

const DICT_ENTRIES: usize = 16;

/// FIFO dictionary shared (by construction) between compressor and
/// decompressor.
#[derive(Debug, Clone)]
struct Dict {
    entries: Vec<u32>,
    next: usize,
}

impl Dict {
    fn new() -> Self {
        Self { entries: vec![0; DICT_ENTRIES], next: 0 }
    }

    fn push(&mut self, word: u32) {
        self.entries[self.next] = word;
        self.next = (self.next + 1) % DICT_ENTRIES;
    }

    /// Best match: prefers full, then 3-byte, then 2-byte (high bytes,
    /// big-endian view of the word — i.e. most significant bytes).
    fn find(&self, word: u32) -> Option<(usize, u32)> {
        let mut best: Option<(usize, u32)> = None; // (index, matched bytes)
        for (i, &e) in self.entries.iter().enumerate() {
            let matched = if e == word {
                4
            } else if (e >> 8) == (word >> 8) {
                3
            } else if (e >> 16) == (word >> 16) {
                2
            } else {
                continue;
            };
            if best.is_none_or(|(_, m)| matched > m) {
                best = Some((i, matched));
            }
        }
        best
    }
}

/// The CPack block codec.
///
/// # Examples
///
/// ```
/// use tmcc_compression::{CpackCodec, BlockCodec};
///
/// // Words repeating from a small working set dictionary-compress well.
/// let mut block = [0u8; 64];
/// for i in 0..16u32 {
///     let v = [0xAABB_CC00u32, 0xAABB_CC11][i as usize % 2];
///     block[i as usize * 4..][..4].copy_from_slice(&v.to_le_bytes());
/// }
/// let codec = CpackCodec::new();
/// let out = codec.compress(&block).expect("repetitive block compresses");
/// assert_eq!(codec.decompress(&out), block);
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct CpackCodec {
    _private: (),
}

impl CpackCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BlockCodec for CpackCodec {
    fn name(&self) -> &'static str {
        "cpack"
    }

    fn compress(&self, block: &[u8; BLOCK_SIZE]) -> Option<Vec<u8>> {
        let mut dict = Dict::new();
        let mut w = BitWriter::new();
        for chunk in block.chunks_exact(4) {
            // Big-endian view so "high bytes" are the most significant.
            let word = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
            if word == 0 {
                w.put(0b00, 2);
                continue;
            }
            if word & 0xffff_ff00 == 0 {
                // zzzx: three zero bytes + one literal byte.
                w.put(0b1101, 4);
                w.put((word & 0xff) as u64, 8);
                continue;
            }
            match dict.find(word) {
                Some((idx, 4)) => {
                    w.put(0b10, 2);
                    w.put(idx as u64, 4);
                }
                Some((idx, 3)) => {
                    w.put(0b1110, 4);
                    w.put(idx as u64, 4);
                    w.put((word & 0xff) as u64, 8);
                    dict.push(word);
                }
                Some((idx, 2)) => {
                    w.put(0b1100, 4);
                    w.put(idx as u64, 4);
                    w.put((word & 0xffff) as u64, 16);
                    dict.push(word);
                }
                _ => {
                    w.put(0b01, 2);
                    w.put(word as u64, 32);
                    dict.push(word);
                }
            }
        }
        if w.len_bytes() >= BLOCK_SIZE {
            None
        } else {
            Some(w.into_bytes())
        }
    }

    fn try_decompress(&self, data: &[u8]) -> Result<[u8; BLOCK_SIZE], CodecError> {
        const CTX: &str = "CPack word code";
        let mut dict = Dict::new();
        let mut r = BitReader::new(data);
        let mut out = [0u8; BLOCK_SIZE];
        for chunk in out.chunks_exact_mut(4) {
            let word = match r.try_get(2, CTX)? {
                0b00 => 0u32,
                0b01 => {
                    let word = r.try_get(32, CTX)? as u32;
                    dict.push(word);
                    word
                }
                0b10 => dict.entries[r.try_get(4, CTX)? as usize],
                _ => match r.try_get(2, CTX)? {
                    0b00 => {
                        // mmxx
                        let idx = r.try_get(4, CTX)? as usize;
                        let low = r.try_get(16, CTX)? as u32;
                        let word = (dict.entries[idx] & 0xffff_0000) | low;
                        dict.push(word);
                        word
                    }
                    0b01 => {
                        // zzzx
                        r.try_get(8, CTX)? as u32
                    }
                    0b10 => {
                        // mmmx
                        let idx = r.try_get(4, CTX)? as usize;
                        let low = r.try_get(8, CTX)? as u32;
                        let word = (dict.entries[idx] & 0xffff_ff00) | low;
                        dict.push(word);
                        word
                    }
                    other => {
                        // `11 11` is unassigned in the pattern table.
                        return Err(CodecError::InvalidCode {
                            context: "CPack pattern",
                            value: 0b1100 | other,
                        });
                    }
                },
            };
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::sample_blocks;

    #[test]
    fn round_trips_all_samples() {
        let codec = CpackCodec::new();
        for (i, block) in sample_blocks().into_iter().enumerate() {
            if let Some(c) = codec.compress(&block) {
                assert_eq!(codec.decompress(&c), block, "sample {i} failed");
            }
        }
    }

    #[test]
    fn zero_block_is_four_bytes() {
        let codec = CpackCodec::new();
        // 16 words x 2 bits = 32 bits = 4 bytes.
        assert_eq!(codec.compressed_size(&[0u8; BLOCK_SIZE]), 4);
    }

    #[test]
    fn full_match_after_first_occurrence() {
        let codec = CpackCodec::new();
        let mut block = [0u8; BLOCK_SIZE];
        for c in block.chunks_exact_mut(4) {
            c.copy_from_slice(&0x1234_5678u32.to_be_bytes());
        }
        // First word: 34 bits; remaining 15: 6 bits each = 124 bits -> 16 B.
        let c = codec.compress(&block).expect("compresses");
        assert!(c.len() <= 16, "got {}", c.len());
        assert_eq!(codec.decompress(&c), block);
    }

    #[test]
    fn partial_matches_round_trip() {
        let codec = CpackCodec::new();
        let mut block = [0u8; BLOCK_SIZE];
        // Same high bytes, varying low bytes: mmmx/mmxx territory.
        for (i, c) in block.chunks_exact_mut(4).enumerate() {
            let v: u32 = 0xCAFE_0000 | (i as u32 * 0x101);
            c.copy_from_slice(&v.to_be_bytes());
        }
        let c = codec.compress(&block).expect("compresses");
        assert_eq!(codec.decompress(&c), block);
    }

    #[test]
    fn malformed_streams_are_typed_errors() {
        let codec = CpackCodec::new();
        // Empty input dies on the first word's prefix.
        assert_eq!(
            codec.try_decompress(&[]),
            Err(CodecError::UnexpectedEnd { context: "CPack word code" })
        );
        // The unassigned `11 11` pattern is an invalid code.
        let mut w = BitWriter::new();
        w.put(0b1111, 4);
        w.put(0, 28); // padding so the stream is not merely short
        assert_eq!(
            codec.try_decompress(&w.into_bytes()),
            Err(CodecError::InvalidCode { context: "CPack pattern", value: 0b1111 })
        );
        // A literal word cut short mid-payload.
        let mut w = BitWriter::new();
        w.put(0b01, 2);
        w.put(0xAB, 8); // only 8 of the 32 literal bits
        assert_eq!(
            codec.try_decompress(&w.into_bytes()),
            Err(CodecError::UnexpectedEnd { context: "CPack word code" })
        );
    }

    #[test]
    fn small_byte_words_use_zzzx() {
        let codec = CpackCodec::new();
        let mut block = [0u8; BLOCK_SIZE];
        for (i, c) in block.chunks_exact_mut(4).enumerate() {
            c.copy_from_slice(&(i as u32 + 1).to_be_bytes());
        }
        // 16 words x 12 bits = 24 bytes.
        let c = codec.compress(&block).expect("compresses");
        assert_eq!(c.len(), 24);
        assert_eq!(codec.decompress(&c), block);
    }
}
