//! Bit-Plane Compression (BPC).
//!
//! Kim et al., "Bit-Plane Compression: Transforming Data for Better
//! Compression in Many-Core Architectures", ISCA 2016 (paper reference
//! [12]). Adapted from the original 128 B/32-thread GPU formulation to
//! 64-byte memory blocks: sixteen 32-bit words give one base word plus
//! fifteen 33-bit deltas, which are bit-plane transposed (DBP), XORed with
//! their neighbour plane (DBX) and run-length / pattern encoded.
//!
//! Symbol table (MSB-first), following the original paper:
//!
//! | pattern                     | code                      |
//! |-----------------------------|---------------------------|
//! | run of 2..=33 zero planes   | `01` + 5-bit (run-2)      |
//! | single zero plane           | `001`                     |
//! | all-ones plane              | `00000`                   |
//! | DBX ≠ 0 but DBP = 0         | `00001`                   |
//! | exactly one 1 in plane      | `00010` + 4-bit position  |
//! | two consecutive 1s          | `00011` + 4-bit position  |
//! | uncompressed plane          | `1` + 15 raw bits         |
//!
//! The base word uses a small width code (zero / 4 / 8 / 16 / 32 bits).

use crate::bits::{BitReader, BitWriter};
use crate::{BlockCodec, CodecError, BLOCK_SIZE};

const WORDS: usize = 16;
const DELTAS: usize = WORDS - 1; // 15
const PLANES: usize = 33; // 33-bit deltas

/// The Bit-Plane Compression block codec.
///
/// # Examples
///
/// ```
/// use tmcc_compression::{BpcCodec, BlockCodec};
///
/// // A linear ramp has constant deltas: DBX planes are almost all zero.
/// let mut block = [0u8; 64];
/// for i in 0..16u32 {
///     block[i as usize * 4..][..4].copy_from_slice(&(i * 8).to_le_bytes());
/// }
/// let codec = BpcCodec::new();
/// let out = codec.compress(&block).expect("ramp compresses");
/// assert!(out.len() < 16);
/// assert_eq!(codec.decompress(&out), block);
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct BpcCodec {
    _private: (),
}

impl BpcCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        Self::default()
    }

    fn words(block: &[u8; BLOCK_SIZE]) -> [u32; WORDS] {
        let mut w = [0u32; WORDS];
        for (i, c) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_le_bytes(c.try_into().expect("4-byte chunk"));
        }
        w
    }

    /// Deltas as 33-bit values (sign bit + 32 magnitude bits, two's
    /// complement in 33 bits).
    fn deltas(words: &[u32; WORDS]) -> [u64; DELTAS] {
        let mut d = [0u64; DELTAS];
        for i in 0..DELTAS {
            let diff = (words[i + 1] as i64) - (words[i] as i64);
            d[i] = (diff as u64) & ((1u64 << 33) - 1);
        }
        d
    }

    /// Transposes deltas into 33 bit-planes of 15 bits each. Plane `p`
    /// holds bit `p` of every delta; bit `i` of the plane = delta `i`.
    fn dbp(deltas: &[u64; DELTAS]) -> [u16; PLANES] {
        let mut planes = [0u16; PLANES];
        for (p, plane) in planes.iter_mut().enumerate() {
            let mut v = 0u16;
            for (i, &d) in deltas.iter().enumerate() {
                v |= (((d >> p) & 1) as u16) << i;
            }
            *plane = v;
        }
        planes
    }

    fn encode_base(w: &mut BitWriter, base: u32) {
        // 2-bit width selector: 0 => zero, 1 => 8-bit, 2 => 16-bit, 3 => 32.
        if base == 0 {
            w.put(0, 2);
        } else if base < (1 << 8) {
            w.put(1, 2);
            w.put(base as u64, 8);
        } else if base < (1 << 16) {
            w.put(2, 2);
            w.put(base as u64, 16);
        } else {
            w.put(3, 2);
            w.put(base as u64, 32);
        }
    }

    fn decode_base(r: &mut BitReader<'_>) -> Result<u32, CodecError> {
        const CTX: &str = "BPC base word";
        Ok(match r.try_get(2, CTX)? {
            0 => 0,
            1 => r.try_get(8, CTX)? as u32,
            2 => r.try_get(16, CTX)? as u32,
            _ => r.try_get(32, CTX)? as u32,
        })
    }
}

impl BlockCodec for BpcCodec {
    fn name(&self) -> &'static str {
        "bpc"
    }

    fn compress(&self, block: &[u8; BLOCK_SIZE]) -> Option<Vec<u8>> {
        let words = Self::words(block);
        let deltas = Self::deltas(&words);
        let dbp = Self::dbp(&deltas);
        let mut w = BitWriter::new();
        Self::encode_base(&mut w, words[0]);

        const ALL_ONES: u16 = (1 << DELTAS as u16) - 1;
        let mut p = 0;
        while p < PLANES {
            let prev_dbp = if p == 0 { 0 } else { dbp[p - 1] };
            let dbx = dbp[p] ^ prev_dbp;
            if dbx == 0 {
                // Count the zero-DBX run.
                let mut run = 1;
                while p + run < PLANES && (dbp[p + run] ^ dbp[p + run - 1]) == 0 && run < 33 {
                    run += 1;
                }
                if run >= 2 {
                    w.put(0b01, 2);
                    w.put(run as u64 - 2, 5);
                } else {
                    w.put(0b001, 3);
                }
                p += run;
                continue;
            }
            if dbx == ALL_ONES {
                w.put(0b00000, 5);
            } else if dbp[p] == 0 {
                w.put(0b00001, 5);
            } else if dbx.count_ones() == 1 {
                w.put(0b00010, 5);
                w.put(dbx.trailing_zeros() as u64, 4);
            } else if dbx.count_ones() == 2 && ((dbx >> dbx.trailing_zeros()) & 0b11) == 0b11 {
                w.put(0b00011, 5);
                w.put(dbx.trailing_zeros() as u64, 4);
            } else {
                w.put(0b1, 1);
                w.put(dbx as u64, DELTAS as u32);
            }
            p += 1;
        }
        if w.len_bytes() >= BLOCK_SIZE {
            None
        } else {
            Some(w.into_bytes())
        }
    }

    fn try_decompress(&self, data: &[u8]) -> Result<[u8; BLOCK_SIZE], CodecError> {
        const CTX: &str = "BPC plane code";
        let mut r = BitReader::new(data);
        let base = Self::decode_base(&mut r)?;
        const ALL_ONES: u16 = (1 << DELTAS as u16) - 1;
        let mut dbp = [0u16; PLANES];
        let mut p = 0;
        while p < PLANES {
            let prev = if p == 0 { 0 } else { dbp[p - 1] };
            // Decode by prefix.
            if r.try_get_bit(CTX)? {
                // '1' + raw 15 bits of DBX.
                let dbx = r.try_get(DELTAS as u32, CTX)? as u16;
                dbp[p] = dbx ^ prev;
                p += 1;
                continue;
            }
            if r.try_get_bit(CTX)? {
                // '01' + 5-bit run of zero-DBX planes. A flipped run count
                // can claim more planes than remain; that run never came
                // from `compress`.
                let run = r.try_get(5, CTX)? as usize + 2;
                if run > PLANES - p {
                    return Err(CodecError::LengthMismatch {
                        context: "BPC zero-DBX run",
                        expected: PLANES - p,
                        got: run,
                    });
                }
                for _ in 0..run {
                    dbp[p] = if p == 0 { 0 } else { dbp[p - 1] };
                    p += 1;
                }
                continue;
            }
            if r.try_get_bit(CTX)? {
                // '001': single zero-DBX plane.
                dbp[p] = prev;
                p += 1;
                continue;
            }
            // '000' + 2 more bits.
            match r.try_get(2, CTX)? {
                0b00 => dbp[p] = ALL_ONES ^ prev,
                0b01 => dbp[p] = 0,
                0b10 => {
                    let pos = r.try_get(4, CTX)? as u16;
                    dbp[p] = (1 << pos) ^ prev;
                }
                _ => {
                    let pos = r.try_get(4, CTX)? as u16;
                    dbp[p] = (0b11 << pos) ^ prev;
                }
            }
            p += 1;
        }
        // Un-transpose planes into deltas.
        let mut deltas = [0u64; DELTAS];
        for (p, &plane) in dbp.iter().enumerate() {
            for (i, d) in deltas.iter_mut().enumerate() {
                *d |= (((plane >> i) & 1) as u64) << p;
            }
        }
        // Rebuild words.
        let mut words = [0u32; WORDS];
        words[0] = base;
        for i in 0..DELTAS {
            let shift = 64 - 33;
            let signed = ((deltas[i] << shift) as i64) >> shift;
            words[i + 1] = (words[i] as i64 + signed) as u32;
        }
        let mut out = [0u8; BLOCK_SIZE];
        for (i, wv) in words.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&wv.to_le_bytes());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::sample_blocks;

    #[test]
    fn round_trips_all_samples() {
        let codec = BpcCodec::new();
        for (i, block) in sample_blocks().into_iter().enumerate() {
            if let Some(c) = codec.compress(&block) {
                assert_eq!(codec.decompress(&c), block, "sample {i} failed");
            }
        }
    }

    #[test]
    fn zero_block_is_tiny() {
        let codec = BpcCodec::new();
        // 2 bits base + '01'+5 bits covering 33 planes: 2 bytes total.
        assert!(codec.compressed_size(&[0u8; BLOCK_SIZE]) <= 2);
    }

    #[test]
    fn constant_stride_compresses_hard() {
        let codec = BpcCodec::new();
        let mut block = [0u8; BLOCK_SIZE];
        for i in 0..16u32 {
            block[i as usize * 4..][..4].copy_from_slice(&(7 + i * 4).to_le_bytes());
        }
        let c = codec.compress(&block).expect("stride compresses");
        assert!(c.len() <= 8, "stride pattern should be tiny, got {}", c.len());
        assert_eq!(codec.decompress(&c), block);
    }

    #[test]
    fn wrapping_word_arithmetic_round_trips() {
        let codec = BpcCodec::new();
        let mut block = [0u8; BLOCK_SIZE];
        let vals: [u32; 16] = [
            u32::MAX,
            0,
            u32::MAX,
            1,
            0x8000_0000,
            0x7fff_ffff,
            3,
            u32::MAX - 7,
            0,
            0,
            1,
            2,
            0xffff_0000,
            0x0000_ffff,
            42,
            41,
        ];
        for (i, v) in vals.iter().enumerate() {
            block[i * 4..(i + 1) * 4].copy_from_slice(&v.to_le_bytes());
        }
        if let Some(c) = codec.compress(&block) {
            assert_eq!(codec.decompress(&c), block);
        }
    }

    #[test]
    fn malformed_streams_are_typed_errors() {
        let codec = BpcCodec::new();
        // Empty input dies reading the base width selector.
        assert_eq!(
            codec.try_decompress(&[]),
            Err(CodecError::UnexpectedEnd { context: "BPC base word" })
        );
        // A single raw-plane code ('1' + 15 bits) with nothing after it:
        // the second plane's prefix bit is past the end. 2 bits base(0) +
        // 16 bits = 18 bits, so 3 bytes carry it; stop after those.
        let mut w = BitWriter::new();
        w.put(0, 2); // base = 0
        w.put(0b1, 1);
        w.put(0x5555, DELTAS as u32);
        let bytes = w.into_bytes();
        // 18 bits of payload in 3 bytes leaves 6 zero pad bits: the decoder
        // misreads pads as '01'-run prefixes until the stream runs dry.
        assert!(codec.try_decompress(&bytes).is_err());
        // An overlong zero-DBX run (claims 33 planes after one is done).
        let mut w = BitWriter::new();
        w.put(0, 2); // base = 0
        w.put(0b001, 3); // one single zero plane => 32 remain
        w.put(0b01, 2);
        w.put(31, 5); // run = 33 > 32 remaining
        assert_eq!(
            codec.try_decompress(&w.into_bytes()),
            Err(CodecError::LengthMismatch { context: "BPC zero-DBX run", expected: 32, got: 33 })
        );
    }

    #[test]
    fn exhaustive_single_bit_planes() {
        // Blocks whose deltas set exactly one DBX bit exercise the
        // single-one and consecutive-ones codes.
        let codec = BpcCodec::new();
        for bit in 0..15usize {
            let mut words = [100u32; 16];
            for w in words.iter_mut().skip(bit + 1) {
                *w = 101; // one delta of +1 at position `bit`
            }
            let mut block = [0u8; BLOCK_SIZE];
            for (i, v) in words.iter().enumerate() {
                block[i * 4..(i + 1) * 4].copy_from_slice(&v.to_le_bytes());
            }
            let c = codec.compress(&block).expect("compresses");
            assert_eq!(codec.decompress(&c), block, "bit {bit}");
        }
    }
}
