//! Zero-block detection.
//!
//! The cheapest and most common special case: an all-zero 64-byte block is
//! represented by metadata alone. The paper's block-level composite ("Zero
//! Block", Fig. 15) and Compresso both special-case it.

use crate::{BlockCodec, CodecError, BLOCK_SIZE};

/// Recognizes all-zero blocks and encodes them in a single marker byte.
///
/// # Examples
///
/// ```
/// use tmcc_compression::{ZeroBlockCodec, BlockCodec};
///
/// let codec = ZeroBlockCodec::new();
/// assert_eq!(codec.compressed_size(&[0u8; 64]), 1);
/// assert_eq!(codec.compressed_size(&[1u8; 64]), 64); // declines
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct ZeroBlockCodec {
    _private: (),
}

impl ZeroBlockCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BlockCodec for ZeroBlockCodec {
    fn name(&self) -> &'static str {
        "zero"
    }

    fn compress(&self, block: &[u8; BLOCK_SIZE]) -> Option<Vec<u8>> {
        block.iter().all(|&b| b == 0).then(|| vec![0u8])
    }

    fn try_decompress(&self, data: &[u8]) -> Result<[u8; BLOCK_SIZE], CodecError> {
        match data {
            [0u8] => Ok([0u8; BLOCK_SIZE]),
            [] => Err(CodecError::UnexpectedEnd { context: "zero marker" }),
            [b, ..] if data.len() == 1 => {
                Err(CodecError::InvalidCode { context: "zero marker", value: *b as u64 })
            }
            _ => Err(CodecError::LengthMismatch {
                context: "zero marker",
                expected: 1,
                got: data.len(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_round_trip() {
        let codec = ZeroBlockCodec::new();
        let c = codec.compress(&[0u8; BLOCK_SIZE]).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(codec.decompress(&c), [0u8; BLOCK_SIZE]);
    }

    #[test]
    fn nonzero_declines() {
        let codec = ZeroBlockCodec::new();
        let mut block = [0u8; BLOCK_SIZE];
        block[63] = 1;
        assert!(codec.compress(&block).is_none());
    }

    #[test]
    fn malformed_streams_are_typed_errors() {
        let codec = ZeroBlockCodec::new();
        assert_eq!(
            codec.try_decompress(&[]),
            Err(CodecError::UnexpectedEnd { context: "zero marker" })
        );
        assert_eq!(
            codec.try_decompress(&[7]),
            Err(CodecError::InvalidCode { context: "zero marker", value: 7 })
        );
        assert_eq!(
            codec.try_decompress(&[0, 0]),
            Err(CodecError::LengthMismatch { context: "zero marker", expected: 1, got: 2 })
        );
    }
}
