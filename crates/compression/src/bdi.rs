//! Base-Delta-Immediate (BDI) compression.
//!
//! Pekhimenko et al., "Base-Delta-Immediate Compression: Practical Data
//! Compression for On-Chip Caches", PACT 2012 (paper reference [53]).
//!
//! A block is viewed as an array of `base_size`-byte values. BDI stores one
//! explicit base plus, per value, a narrow delta from either the explicit
//! base or an implicit zero base (the "immediate" part). Eight encodings are
//! tried and the smallest valid one wins:
//!
//! | encoding     | output bytes (64 B block)          |
//! |--------------|------------------------------------|
//! | zeros        | 1 (header only)                    |
//! | repeat-8     | 1 + 8                              |
//! | base8-Δ1     | 1 + 8 + 1 + 8×1 = 18               |
//! | base8-Δ2     | 1 + 8 + 1 + 8×2 = 26               |
//! | base8-Δ4     | 1 + 8 + 1 + 8×4 = 42               |
//! | base4-Δ1     | 1 + 4 + 2 + 16×1 = 23              |
//! | base4-Δ2     | 1 + 4 + 2 + 16×2 = 39              |
//! | base2-Δ1     | 1 + 2 + 4 + 32×1 = 39              |
//!
//! (The per-value mask records which base — explicit or zero — each delta is
//! relative to.)

use crate::{BlockCodec, CodecError, BLOCK_SIZE};

/// Encoding identifiers stored in the first output byte.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Encoding {
    Zeros = 0,
    Repeat8 = 1,
    B8D1 = 2,
    B8D2 = 3,
    B8D4 = 4,
    B4D1 = 5,
    B4D2 = 6,
    B2D1 = 7,
}

impl Encoding {
    fn try_from_id(id: u8) -> Result<Self, CodecError> {
        Ok(match id {
            0 => Self::Zeros,
            1 => Self::Repeat8,
            2 => Self::B8D1,
            3 => Self::B8D2,
            4 => Self::B8D4,
            5 => Self::B4D1,
            6 => Self::B4D2,
            7 => Self::B2D1,
            other => {
                return Err(CodecError::InvalidCode {
                    context: "BDI encoding id",
                    value: other as u64,
                })
            }
        })
    }

    fn base_delta(self) -> Option<(usize, usize)> {
        match self {
            Self::Zeros | Self::Repeat8 => None,
            Self::B8D1 => Some((8, 1)),
            Self::B8D2 => Some((8, 2)),
            Self::B8D4 => Some((8, 4)),
            Self::B4D1 => Some((4, 1)),
            Self::B4D2 => Some((4, 2)),
            Self::B2D1 => Some((2, 1)),
        }
    }
}

/// The Base-Delta-Immediate block codec.
///
/// # Examples
///
/// ```
/// use tmcc_compression::{BdiCodec, BlockCodec};
///
/// // Sixteen consecutive small integers compress well under base4-Δ1.
/// let mut block = [0u8; 64];
/// for i in 0..16u32 {
///     block[i as usize * 4..][..4].copy_from_slice(&(5000 + i).to_le_bytes());
/// }
/// let codec = BdiCodec::new();
/// let out = codec.compress(&block).expect("BDI applies");
/// assert!(out.len() <= 23);
/// assert_eq!(codec.decompress(&out), block);
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct BdiCodec {
    _private: (),
}

impl BdiCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        Self::default()
    }

    fn values(block: &[u8; BLOCK_SIZE], size: usize) -> Vec<u64> {
        block
            .chunks_exact(size)
            .map(|c| {
                let mut v = [0u8; 8];
                v[..size].copy_from_slice(c);
                u64::from_le_bytes(v)
            })
            .collect()
    }

    /// Whether `value - base` (wrapping, in `base_size`-byte arithmetic)
    /// fits in a sign-extended `delta_size`-byte delta.
    fn delta_fits(value: u64, base: u64, base_size: usize, delta_size: usize) -> Option<u64> {
        let width = base_size as u32 * 8;
        let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        let delta = value.wrapping_sub(base) & mask;
        // Sign-extend delta from `width` to 64 bits, then check it fits in
        // delta_size bytes as a signed quantity.
        let shift = 64 - width;
        let signed = ((delta << shift) as i64) >> shift;
        let dbits = delta_size as u32 * 8;
        let min = -(1i64 << (dbits - 1));
        let max = (1i64 << (dbits - 1)) - 1;
        if signed >= min && signed <= max {
            // dbits <= 32 for every encoding, so the mask never overflows.
            Some((signed as u64) & ((1u64 << dbits) - 1))
        } else {
            None
        }
    }

    fn try_base_delta(block: &[u8; BLOCK_SIZE], enc: Encoding) -> Option<Vec<u8>> {
        let (bs, ds) = enc.base_delta().expect("base-delta encoding");
        let values = Self::values(block, bs);
        let n = values.len();
        // The explicit base is the first value not representable from zero.
        let mut base: Option<u64> = None;
        let mut mask = vec![false; n]; // true = uses explicit base
        let mut deltas = vec![0u64; n];
        for (i, &v) in values.iter().enumerate() {
            if let Some(d) = Self::delta_fits(v, 0, bs, ds) {
                deltas[i] = d;
            } else {
                let b = *base.get_or_insert(v);
                let d = Self::delta_fits(v, b, bs, ds)?;
                mask[i] = true;
                deltas[i] = d;
            }
        }
        let base = base.unwrap_or(0);
        let mut out = vec![enc as u8];
        out.extend_from_slice(&base.to_le_bytes()[..bs]);
        // Mask bytes.
        let mut mask_bytes = vec![0u8; n.div_ceil(8)];
        for (i, &m) in mask.iter().enumerate() {
            if m {
                mask_bytes[i / 8] |= 1 << (i % 8);
            }
        }
        out.extend_from_slice(&mask_bytes);
        for &d in &deltas {
            out.extend_from_slice(&d.to_le_bytes()[..ds]);
        }
        Some(out)
    }
}

impl BlockCodec for BdiCodec {
    fn name(&self) -> &'static str {
        "bdi"
    }

    fn compress(&self, block: &[u8; BLOCK_SIZE]) -> Option<Vec<u8>> {
        if block.iter().all(|&b| b == 0) {
            return Some(vec![Encoding::Zeros as u8]);
        }
        if block.chunks_exact(8).all(|c| c == &block[..8]) {
            let mut out = vec![Encoding::Repeat8 as u8];
            out.extend_from_slice(&block[..8]);
            return Some(out);
        }
        let mut best: Option<Vec<u8>> = None;
        for enc in [
            Encoding::B8D1,
            Encoding::B4D1,
            Encoding::B8D2,
            Encoding::B2D1,
            Encoding::B4D2,
            Encoding::B8D4,
        ] {
            if let Some(out) = Self::try_base_delta(block, enc) {
                if best.as_ref().is_none_or(|b| out.len() < b.len()) {
                    best = Some(out);
                }
            }
        }
        best.filter(|b| b.len() < BLOCK_SIZE)
    }

    fn try_decompress(&self, data: &[u8]) -> Result<[u8; BLOCK_SIZE], CodecError> {
        let &header = data.first().ok_or(CodecError::UnexpectedEnd { context: "BDI header" })?;
        let enc = Encoding::try_from_id(header)?;
        let mut out = [0u8; BLOCK_SIZE];
        match enc {
            Encoding::Zeros => Ok(out),
            Encoding::Repeat8 => {
                let word = data
                    .get(1..9)
                    .ok_or(CodecError::UnexpectedEnd { context: "BDI repeat word" })?;
                for chunk in out.chunks_exact_mut(8) {
                    chunk.copy_from_slice(word);
                }
                Ok(out)
            }
            _ => {
                let (bs, ds) = enc.base_delta().expect("base-delta encoding");
                let n = BLOCK_SIZE / bs;
                // Fixed layout per encoding: header + base + mask + deltas.
                let expected = 1 + bs + n.div_ceil(8) + n * ds;
                if data.len() < expected {
                    return Err(CodecError::LengthMismatch {
                        context: "BDI base-delta body",
                        expected,
                        got: data.len(),
                    });
                }
                let mut pos = 1;
                let mut base_bytes = [0u8; 8];
                base_bytes[..bs].copy_from_slice(&data[pos..pos + bs]);
                let base = u64::from_le_bytes(base_bytes);
                pos += bs;
                let mask_len = n.div_ceil(8);
                let mask = &data[pos..pos + mask_len];
                pos += mask_len;
                let width = bs as u32 * 8;
                let vmask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
                for i in 0..n {
                    let mut dbytes = [0u8; 8];
                    dbytes[..ds].copy_from_slice(&data[pos..pos + ds]);
                    pos += ds;
                    // Sign-extend the delta from ds bytes.
                    let dbits = ds as u32 * 8;
                    let raw = u64::from_le_bytes(dbytes);
                    let shift = 64 - dbits;
                    let delta = (((raw << shift) as i64) >> shift) as u64;
                    let use_base = mask[i / 8] & (1 << (i % 8)) != 0;
                    let b = if use_base { base } else { 0 };
                    let v = b.wrapping_add(delta) & vmask;
                    out[i * bs..(i + 1) * bs].copy_from_slice(&v.to_le_bytes()[..bs]);
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::sample_blocks;

    #[test]
    fn round_trips_all_samples() {
        let codec = BdiCodec::new();
        for block in sample_blocks() {
            if let Some(c) = codec.compress(&block) {
                assert!(c.len() < BLOCK_SIZE);
                assert_eq!(codec.decompress(&c), block, "round trip failed");
            }
        }
    }

    #[test]
    fn zero_block_is_one_byte() {
        let codec = BdiCodec::new();
        assert_eq!(codec.compressed_size(&[0u8; BLOCK_SIZE]), 1);
    }

    #[test]
    fn repeated_word_is_nine_bytes() {
        let codec = BdiCodec::new();
        let mut block = [0u8; BLOCK_SIZE];
        for c in block.chunks_exact_mut(8) {
            c.copy_from_slice(&0xdead_beef_cafe_f00du64.to_le_bytes());
        }
        assert_eq!(codec.compressed_size(&block), 9);
    }

    #[test]
    fn pointers_compress_with_base8() {
        let codec = BdiCodec::new();
        let mut block = [0u8; BLOCK_SIZE];
        for i in 0..8u64 {
            block[i as usize * 8..][..8]
                .copy_from_slice(&(0x7f00_0000_1000u64 + i * 8).to_le_bytes());
        }
        let c = codec.compress(&block).expect("pointer block compresses");
        assert!(c.len() <= 18, "base8-delta1 expected, got {}", c.len());
        assert_eq!(codec.decompress(&c), block);
    }

    #[test]
    fn random_block_declines() {
        let codec = BdiCodec::new();
        let block = sample_blocks().pop().unwrap();
        assert_eq!(codec.compressed_size(&block), BLOCK_SIZE);
    }

    #[test]
    fn malformed_streams_are_typed_errors() {
        let codec = BdiCodec::new();
        assert_eq!(
            codec.try_decompress(&[]),
            Err(CodecError::UnexpectedEnd { context: "BDI header" })
        );
        assert_eq!(
            codec.try_decompress(&[200]),
            Err(CodecError::InvalidCode { context: "BDI encoding id", value: 200 })
        );
        assert_eq!(
            codec.try_decompress(&[Encoding::Repeat8 as u8, 1, 2]),
            Err(CodecError::UnexpectedEnd { context: "BDI repeat word" })
        );
        assert_eq!(
            codec.try_decompress(&[Encoding::B8D1 as u8, 0, 0]),
            Err(CodecError::LengthMismatch {
                context: "BDI base-delta body",
                expected: 18,
                got: 3
            })
        );
    }

    #[test]
    fn negative_deltas_round_trip() {
        let codec = BdiCodec::new();
        let mut block = [0u8; BLOCK_SIZE];
        // Descending values: deltas from the first value are negative.
        for i in 0..16u32 {
            let v = 100_000u32.wrapping_sub(i * 3);
            block[i as usize * 4..][..4].copy_from_slice(&v.to_le_bytes());
        }
        let c = codec.compress(&block).expect("descending ints compress");
        assert_eq!(codec.decompress(&c), block);
    }
}
