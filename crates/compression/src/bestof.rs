//! The "smallest of BDI, BPC, CPack, Zero Block" composite.
//!
//! This is exactly the block-level compression the paper models for
//! Compresso and plots in Fig. 15 ("we model a 64B-block-level compression
//! that chooses the smallest output between BPC, BDI, Cpack, and Zero
//! Block"). A one-byte header records which codec won so the block can be
//! restored.

use crate::{BdiCodec, BlockCodec, BpcCodec, CodecError, CpackCodec, ZeroBlockCodec, BLOCK_SIZE};

/// Identifier of the winning codec, stored in the composite header byte.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Winner {
    Zero = 0,
    Bdi = 1,
    Bpc = 2,
    Cpack = 3,
}

/// Chooses the smallest output among the four block codecs.
///
/// # Examples
///
/// ```
/// use tmcc_compression::{BestOfCodec, BlockCodec};
///
/// let codec = BestOfCodec::new();
/// let mut block = [0u8; 64];
/// for i in 0..16u32 {
///     block[i as usize * 4..][..4].copy_from_slice(&(i * 2).to_le_bytes());
/// }
/// let out = codec.compress(&block).expect("ramp compresses");
/// assert_eq!(codec.decompress(&out), block);
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct BestOfCodec {
    zero: ZeroBlockCodec,
    bdi: BdiCodec,
    bpc: BpcCodec,
    cpack: CpackCodec,
}

impl BestOfCodec {
    /// Creates the composite codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Which codec would win for this block, with its payload, if any
    /// compresses.
    fn best(&self, block: &[u8; BLOCK_SIZE]) -> Option<(Winner, Vec<u8>)> {
        let mut best: Option<(Winner, Vec<u8>)> = None;
        let candidates: [(Winner, Option<Vec<u8>>); 4] = [
            (Winner::Zero, self.zero.compress(block)),
            (Winner::Bdi, self.bdi.compress(block)),
            (Winner::Bpc, self.bpc.compress(block)),
            (Winner::Cpack, self.cpack.compress(block)),
        ];
        for (who, out) in candidates {
            if let Some(out) = out {
                if best.as_ref().is_none_or(|(_, b)| out.len() < b.len()) {
                    best = Some((who, out));
                }
            }
        }
        best
    }
}

impl BlockCodec for BestOfCodec {
    fn name(&self) -> &'static str {
        "best-of-block"
    }

    fn compress(&self, block: &[u8; BLOCK_SIZE]) -> Option<Vec<u8>> {
        let (winner, payload) = self.best(block)?;
        if payload.len() + 1 >= BLOCK_SIZE {
            return None;
        }
        let mut out = Vec::with_capacity(payload.len() + 1);
        out.push(winner as u8);
        out.extend_from_slice(&payload);
        Some(out)
    }

    fn try_decompress(&self, data: &[u8]) -> Result<[u8; BLOCK_SIZE], CodecError> {
        let (&header, payload) =
            data.split_first().ok_or(CodecError::UnexpectedEnd { context: "best-of header" })?;
        match header {
            0 => self.zero.try_decompress(payload),
            1 => self.bdi.try_decompress(payload),
            2 => self.bpc.try_decompress(payload),
            3 => self.cpack.try_decompress(payload),
            other => {
                Err(CodecError::InvalidCode { context: "best-of header", value: other as u64 })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::sample_blocks;

    #[test]
    fn round_trips_all_samples() {
        let codec = BestOfCodec::new();
        for (i, block) in sample_blocks().into_iter().enumerate() {
            if let Some(c) = codec.compress(&block) {
                assert!(c.len() < BLOCK_SIZE);
                assert_eq!(codec.decompress(&c), block, "sample {i} failed");
            }
        }
    }

    #[test]
    fn never_worse_than_any_member() {
        let codec = BestOfCodec::new();
        let members: [&dyn BlockCodec; 4] = [&codec.zero, &codec.bdi, &codec.bpc, &codec.cpack];
        for block in sample_blocks() {
            let composite = codec.compressed_size(&block);
            for m in &members {
                // +1 for the composite's header byte, capped at BLOCK_SIZE.
                let bound = (m.compressed_size(&block) + 1).min(BLOCK_SIZE);
                assert!(
                    composite <= bound,
                    "{} beat composite on a block: {composite} > {bound}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn malformed_streams_are_typed_errors() {
        let codec = BestOfCodec::new();
        assert_eq!(
            codec.try_decompress(&[]),
            Err(CodecError::UnexpectedEnd { context: "best-of header" })
        );
        assert_eq!(
            codec.try_decompress(&[9, 0]),
            Err(CodecError::InvalidCode { context: "best-of header", value: 9 })
        );
        // Errors from the inner codec surface unchanged.
        assert_eq!(
            codec.try_decompress(&[0, 7]),
            Err(CodecError::InvalidCode { context: "zero marker", value: 7 })
        );
    }

    #[test]
    fn zero_wins_on_zero_block() {
        let codec = BestOfCodec::new();
        let c = codec.compress(&[0u8; BLOCK_SIZE]).unwrap();
        assert_eq!(c[0], Winner::Zero as u8);
        assert_eq!(c.len(), 2);
    }
}
