//! MSB-first bit-granular writer/reader used by the bit-packed codecs
//! (BPC, CPack) and by the Deflate implementation downstream.

/// Writes an MSB-first bit stream into a growing byte vector.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the stream.
    len_bits: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Appends the low `n` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn put(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        for i in (0..n).rev() {
            let bit = (value >> i) & 1;
            let byte_idx = self.len_bits / 8;
            if byte_idx == self.bytes.len() {
                self.bytes.push(0);
            }
            if bit != 0 {
                self.bytes[byte_idx] |= 0x80 >> (self.len_bits % 8);
            }
            self.len_bits += 1;
        }
    }

    /// Appends a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        self.put(bit as u64, 1);
    }

    /// Finishes the stream, returning the padded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// The stream length rounded up to whole bytes.
    pub fn len_bytes(&self) -> usize {
        self.len_bits.div_ceil(8)
    }
}

/// Reads an MSB-first bit stream produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice for reading.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos_bits: 0 }
    }

    /// Reads `n` bits, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bits remain or `n > 64`.
    pub fn get(&mut self, n: u32) -> u64 {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        assert!(self.pos_bits + n as usize <= self.bytes.len() * 8, "bit stream exhausted");
        let mut out = 0u64;
        for _ in 0..n {
            let byte = self.bytes[self.pos_bits / 8];
            let bit = (byte >> (7 - self.pos_bits % 8)) & 1;
            out = (out << 1) | bit as u64;
            self.pos_bits += 1;
        }
        out
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics if the stream is exhausted.
    pub fn get_bit(&mut self) -> bool {
        self.get(1) != 0
    }

    /// Bits remaining (counting byte padding).
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos_bits
    }

    /// Current read position in bits.
    pub fn pos_bits(&self) -> usize {
        self.pos_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0xdead, 16);
        w.put_bit(true);
        w.put(0x1234_5678_9abc_def0, 64);
        let bits = w.len_bits();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(3), 0b101);
        assert_eq!(r.get(16), 0xdead);
        assert!(r.get_bit());
        assert_eq!(r.get(64), 0x1234_5678_9abc_def0);
        assert_eq!(r.pos_bits(), bits);
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.put(0xffff, 0);
        assert_eq!(w.len_bits(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    #[should_panic(expected = "bit stream exhausted")]
    fn reader_panics_past_end() {
        let mut r = BitReader::new(&[0xff]);
        let _ = r.get(9);
    }

    #[test]
    fn len_bytes_rounds_up() {
        let mut w = BitWriter::new();
        w.put(0b1, 1);
        assert_eq!(w.len_bytes(), 1);
        w.put(0xff, 8);
        assert_eq!(w.len_bytes(), 2);
    }
}
