//! MSB-first bit-granular writer/reader used by the bit-packed codecs
//! (BPC, CPack) and by the Deflate implementation downstream.
//!
//! Both sides run on a 64-bit accumulator with byte-granular flush/refill
//! instead of per-bit loops, so every `put`/`get` is O(1) in the number of
//! *calls*, not bits. The stream format is unchanged: the first bit written
//! is the most significant bit of the first byte, and the final partial
//! byte is zero-padded in its low bits.
//!
//! Invariants (relied on by the Huffman decode tables in `tmcc-deflate`):
//!
//! * `BitWriter` keeps fewer than 8 pending bits in its accumulator — all
//!   whole bytes are flushed eagerly, and the pending bits are the *low*
//!   bits of the accumulator with all higher bits zero.
//! * `BitReader::peek` returns the next `n` bits zero-padded past the end
//!   of the stream without advancing, so a table lookup may safely read
//!   more bits than the code it resolves actually consumes.

use crate::error::CodecError;

/// Bit mask with the low `n` bits set (`n <= 64`).
#[inline]
fn mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Writes an MSB-first bit stream into a growing byte vector.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Pending bits, right-aligned; always fewer than 8, higher bits zero.
    acc: u64,
    /// Number of valid bits in `acc` (0..=7).
    acc_bits: u32,
    /// Number of valid bits in the stream.
    len_bits: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer whose byte buffer has room for `bytes`
    /// bytes before reallocating.
    pub fn with_capacity(bytes: usize) -> Self {
        Self { bytes: Vec::with_capacity(bytes), acc: 0, acc_bits: 0, len_bits: 0 }
    }

    /// Resets the writer to empty, keeping the allocated buffer.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.acc = 0;
        self.acc_bits = 0;
        self.len_bits = 0;
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Appends the low `n` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[inline]
    pub fn put(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        if n == 0 {
            return;
        }
        // The accumulator holds at most 7 pending bits, so up to 56 more
        // fit without overflow; split wider writes once.
        if n > 56 {
            self.put(value >> 32, n - 32);
            self.put(value & mask(32), 32);
            return;
        }
        self.acc = (self.acc << n) | (value & mask(n));
        self.acc_bits += n;
        self.len_bits += n as usize;
        while self.acc_bits >= 8 {
            self.acc_bits -= 8;
            self.bytes.push((self.acc >> self.acc_bits) as u8);
        }
        self.acc &= mask(self.acc_bits);
    }

    /// Appends a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.put(bit as u64, 1);
    }

    /// Finishes the stream, returning the padded bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.acc_bits > 0 {
            self.bytes.push((self.acc << (8 - self.acc_bits)) as u8);
        }
        self.bytes
    }

    /// Finishes the stream and moves the padded bytes out, leaving the
    /// writer empty but with its allocation intact — the reuse hook for
    /// per-page codec scratch.
    pub fn take_bytes(&mut self) -> Vec<u8> {
        if self.acc_bits > 0 {
            self.bytes.push((self.acc << (8 - self.acc_bits)) as u8);
        }
        self.acc = 0;
        self.acc_bits = 0;
        self.len_bits = 0;
        std::mem::take(&mut self.bytes)
    }

    /// The stream length rounded up to whole bytes.
    pub fn len_bytes(&self) -> usize {
        self.len_bits.div_ceil(8)
    }
}

/// Reads an MSB-first bit stream produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next byte to pull into the accumulator.
    byte_pos: usize,
    /// Refilled bits, right-aligned: the next stream bit is bit
    /// `acc_bits - 1` of `acc`.
    acc: u64,
    /// Number of valid bits in `acc`.
    acc_bits: u32,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice for reading.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, byte_pos: 0, acc: 0, acc_bits: 0 }
    }

    /// Pulls whole bytes into the accumulator while at least 8 bits of
    /// room remain.
    #[inline]
    fn refill(&mut self) {
        while self.acc_bits <= 56 && self.byte_pos < self.bytes.len() {
            self.acc = (self.acc << 8) | self.bytes[self.byte_pos] as u64;
            self.byte_pos += 1;
            self.acc_bits += 8;
        }
    }

    /// Reads `n` bits, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bits remain or `n > 64`.
    #[inline]
    pub fn get(&mut self, n: u32) -> u64 {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        if n == 0 {
            return 0;
        }
        if n > 56 {
            let hi = self.get(n - 32);
            return (hi << 32) | self.get(32);
        }
        if self.acc_bits < n {
            self.refill();
            assert!(self.acc_bits >= n, "bit stream exhausted");
        }
        self.acc_bits -= n;
        (self.acc >> self.acc_bits) & mask(n)
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics if the stream is exhausted.
    #[inline]
    pub fn get_bit(&mut self) -> bool {
        self.get(1) != 0
    }

    /// Fallible [`get`](Self::get): returns
    /// [`CodecError::UnexpectedEnd`] instead of panicking when fewer than
    /// `n` bits remain. `context` names the decoder stage for the error.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` (a caller bug, not a data property).
    #[inline]
    pub fn try_get(&mut self, n: u32, context: &'static str) -> Result<u64, CodecError> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        if n == 0 {
            return Ok(0);
        }
        if n > 56 {
            let hi = self.try_get(n - 32, context)?;
            return Ok((hi << 32) | self.try_get(32, context)?);
        }
        if self.acc_bits < n {
            self.refill();
            if self.acc_bits < n {
                return Err(CodecError::UnexpectedEnd { context });
            }
        }
        self.acc_bits -= n;
        Ok((self.acc >> self.acc_bits) & mask(n))
    }

    /// Fallible [`get_bit`](Self::get_bit).
    #[inline]
    pub fn try_get_bit(&mut self, context: &'static str) -> Result<bool, CodecError> {
        Ok(self.try_get(1, context)? != 0)
    }

    /// Returns the next `n <= 56` bits without advancing, zero-padded if
    /// fewer remain — the lookup key for table-driven Huffman decoding.
    ///
    /// # Panics
    ///
    /// Panics if `n > 56`.
    #[inline]
    pub fn peek(&mut self, n: u32) -> u64 {
        assert!(n <= 56, "cannot peek more than 56 bits");
        if self.acc_bits < n {
            self.refill();
        }
        if self.acc_bits >= n {
            (self.acc >> (self.acc_bits - n)) & mask(n)
        } else {
            (self.acc << (n - self.acc_bits)) & mask(n)
        }
    }

    /// Advances past `n` bits previously observed via [`peek`](Self::peek).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bits remain.
    #[inline]
    pub fn consume(&mut self, n: u32) {
        assert!(self.acc_bits >= n, "cannot consume more bits than peeked");
        self.acc_bits -= n;
        self.acc &= mask(self.acc_bits);
    }

    /// Fallible [`consume`](Self::consume): a corrupt stream can resolve a
    /// symbol off [`peek`](Self::peek)'s zero padding whose code is longer
    /// than the bits actually left; that surfaces here as
    /// [`CodecError::UnexpectedEnd`] instead of a panic.
    #[inline]
    pub fn try_consume(&mut self, n: u32, context: &'static str) -> Result<(), CodecError> {
        if self.acc_bits < n {
            self.refill();
            if self.acc_bits < n {
                return Err(CodecError::UnexpectedEnd { context });
            }
        }
        self.acc_bits -= n;
        self.acc &= mask(self.acc_bits);
        Ok(())
    }

    /// Bits remaining (counting byte padding).
    pub fn remaining_bits(&self) -> usize {
        (self.bytes.len() - self.byte_pos) * 8 + self.acc_bits as usize
    }

    /// Current read position in bits.
    pub fn pos_bits(&self) -> usize {
        self.byte_pos * 8 - self.acc_bits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0xdead, 16);
        w.put_bit(true);
        w.put(0x1234_5678_9abc_def0, 64);
        let bits = w.len_bits();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(3), 0b101);
        assert_eq!(r.get(16), 0xdead);
        assert!(r.get_bit());
        assert_eq!(r.get(64), 0x1234_5678_9abc_def0);
        assert_eq!(r.pos_bits(), bits);
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.put(0xffff, 0);
        assert_eq!(w.len_bits(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    #[should_panic(expected = "bit stream exhausted")]
    fn reader_panics_past_end() {
        let mut r = BitReader::new(&[0xff]);
        let _ = r.get(9);
    }

    #[test]
    fn len_bytes_rounds_up() {
        let mut w = BitWriter::new();
        w.put(0b1, 1);
        assert_eq!(w.len_bytes(), 1);
        w.put(0xff, 8);
        assert_eq!(w.len_bytes(), 2);
    }

    #[test]
    fn high_bits_above_width_are_ignored() {
        let mut w = BitWriter::new();
        w.put(u64::MAX, 3);
        w.put(u64::MAX, 60);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(3), 0b111);
        assert_eq!(r.get(60), mask(60));
    }

    #[test]
    fn peek_does_not_advance_and_pads_past_end() {
        let mut r = BitReader::new(&[0b1010_1100, 0b1111_0000]);
        assert_eq!(r.peek(4), 0b1010);
        assert_eq!(r.peek(12), 0b1010_1100_1111);
        assert_eq!(r.get(4), 0b1010);
        // 12 bits remain; peeking 20 pads with zeros.
        assert_eq!(r.peek(20), 0b1100_1111_0000 << 8);
        r.consume(12);
        assert_eq!(r.remaining_bits(), 0);
        assert_eq!(r.peek(8), 0);
    }

    #[test]
    fn take_bytes_resets_and_keeps_format() {
        let mut w = BitWriter::new();
        w.put(0b1_0110, 5);
        let first = w.take_bytes();
        assert_eq!(first, vec![0b1011_0000]);
        assert_eq!(w.len_bits(), 0);
        w.put(0xA5, 8);
        assert_eq!(w.take_bytes(), vec![0xA5]);
    }

    #[test]
    fn clear_resets_pending_bits() {
        let mut w = BitWriter::new();
        w.put(0b11, 2);
        w.clear();
        w.put(0, 1);
        w.put(0b1, 1);
        assert_eq!(w.into_bytes(), vec![0b0100_0000]);
    }
}
