//! Typed decode errors: a corrupt stream is a value, not an abort.
//!
//! Every fallible decode path in this crate and in `tmcc-deflate` reports
//! malformed input through [`CodecError`]. The variants distinguish the
//! structurally different ways a bit-flipped stream can fail to parse —
//! exhaustion, invalid code points, impossible back-references, length
//! contradictions and failed integrity seals — because the simulator's
//! recovery ladder treats payload corruption and metadata corruption
//! differently.
//!
//! The type is small, `Copy`, and carries only plain integers so it can
//! ride inside `TmccError` (which requires `Clone + PartialEq`) and be
//! asserted exactly in differential fixtures.

use std::fmt;

/// Why a decoder rejected its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The bit/byte stream ended before the decoder got what it needed.
    UnexpectedEnd {
        /// Which decoder stage hit the end.
        context: &'static str,
    },
    /// A code point that no valid stream can contain (invalid Huffman
    /// code, unknown CPack prefix, bad BDI encoding id, …).
    InvalidCode {
        /// Which decoder stage rejected the code.
        context: &'static str,
        /// The offending code/value, widened for display.
        value: u64,
    },
    /// An LZ back-reference reaching before the start of the output.
    BadBackref {
        /// The encoded distance.
        distance: usize,
        /// Bytes of output produced when the reference was seen.
        produced: usize,
    },
    /// Decoded output disagrees with a length the stream declared.
    LengthMismatch {
        /// Which decoder stage found the contradiction.
        context: &'static str,
        /// The declared length.
        expected: usize,
        /// The length actually produced/observed.
        got: usize,
    },
    /// The decoder would exceed its output bound (corrupt streams must
    /// never allocate unboundedly).
    OutputOverflow {
        /// Which decoder stage overflowed.
        context: &'static str,
        /// The configured output cap in bytes.
        cap: usize,
    },
    /// A CRC32 integrity seal over the payload failed verification.
    ChecksumMismatch {
        /// CRC stored in the seal.
        stored: u32,
        /// CRC recomputed over the payload.
        computed: u32,
    },
    /// The sealed metadata tag (mode, lengths, CTE rank) disagrees with
    /// the page being decoded — metadata corruption, distinct from
    /// payload corruption.
    MetadataMismatch {
        /// Tag word stored in the seal.
        stored: u64,
        /// Tag word recomputed from the page.
        computed: u64,
    },
}

impl CodecError {
    /// Whether this error indicates metadata (tag) corruption rather than
    /// payload corruption — the recovery ladder accounts them separately.
    pub fn is_metadata(&self) -> bool {
        matches!(self, CodecError::MetadataMismatch { .. })
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { context } => {
                write!(f, "{context}: stream exhausted")
            }
            CodecError::InvalidCode { context, value } => {
                write!(f, "{context}: invalid code {value:#x}")
            }
            CodecError::BadBackref { distance, produced } => {
                write!(f, "LZ match distance {distance} reaches before output ({produced} bytes)")
            }
            CodecError::LengthMismatch { context, expected, got } => {
                write!(f, "{context}: declared length {expected}, got {got}")
            }
            CodecError::OutputOverflow { context, cap } => {
                write!(f, "{context}: output exceeds the {cap}-byte bound")
            }
            CodecError::ChecksumMismatch { stored, computed } => {
                write!(f, "payload CRC mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            CodecError::MetadataMismatch { stored, computed } => {
                write!(f, "metadata tag mismatch: stored {stored:#x}, computed {computed:#x}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        let e = CodecError::UnexpectedEnd { context: "bit reader" };
        assert_eq!(e.to_string(), "bit reader: stream exhausted");
        let e = CodecError::ChecksumMismatch { stored: 1, computed: 2 };
        assert!(e.to_string().contains("CRC mismatch"));
    }

    #[test]
    fn metadata_classification() {
        assert!(CodecError::MetadataMismatch { stored: 0, computed: 1 }.is_metadata());
        assert!(!CodecError::ChecksumMismatch { stored: 0, computed: 1 }.is_metadata());
        assert!(!CodecError::BadBackref { distance: 9, produced: 1 }.is_metadata());
    }
}
