//! Block-level memory compression algorithms.
//!
//! Hardware memory compression for *bandwidth* (and Compresso-style designs
//! for capacity) compress individual 64-byte memory blocks with fast,
//! shallow algorithms. The paper's block-level reference point (Fig. 15)
//! "chooses the smallest output between BPC, BDI, CPack, and Zero Block";
//! that exact composite is [`BestOfCodec`].
//!
//! Every codec here is **functionally real**: `compress` produces a byte
//! stream that `decompress` restores bit-exactly, verified by unit and
//! property tests. Compressed sizes are what the capacity accounting in the
//! simulator consumes.
//!
//! # Examples
//!
//! ```
//! use tmcc_compression::{BestOfCodec, BlockCodec, BLOCK_SIZE};
//!
//! let codec = BestOfCodec::new();
//! let block = [0u8; BLOCK_SIZE]; // an all-zero block
//! let compressed = codec.compress(&block).expect("zero blocks compress");
//! assert!(compressed.len() < BLOCK_SIZE);
//! assert_eq!(codec.decompress(&compressed), block);
//! ```

mod bdi;
mod bestof;
mod bits;
mod bpc;
mod cpack;
mod error;
mod zero;

pub use bdi::BdiCodec;
pub use bestof::BestOfCodec;
pub use bits::{BitReader, BitWriter};
pub use bpc::BpcCodec;
pub use cpack::CpackCodec;
pub use error::CodecError;
pub use zero::ZeroBlockCodec;

/// Size of a memory block in bytes (one cacheline).
pub const BLOCK_SIZE: usize = 64;

/// A lossless compressor for one 64-byte memory block.
///
/// Implementations return `None` from [`compress`](Self::compress) when the
/// block does not benefit (the output would be at least as large as the
/// input); hardware then stores the block uncompressed.
pub trait BlockCodec {
    /// Short identifier used in reports (e.g. `"bdi"`).
    fn name(&self) -> &'static str;

    /// Compresses `block`, returning the encoded bytes, or `None` when the
    /// encoding would not be smaller than [`BLOCK_SIZE`].
    fn compress(&self, block: &[u8; BLOCK_SIZE]) -> Option<Vec<u8>>;

    /// Fallible decode: restores the original block, or reports *why* the
    /// bytes cannot be a stream this codec produced. Implementations must
    /// never panic, over-read, or allocate unboundedly on arbitrary input —
    /// a corrupt stream is a value, not an abort.
    fn try_decompress(&self, data: &[u8]) -> Result<[u8; BLOCK_SIZE], CodecError>;

    /// Restores the original block from bytes produced by
    /// [`compress`](Self::compress).
    ///
    /// # Panics
    ///
    /// Panics on byte streams not produced by the same codec's `compress`
    /// (the [`try_decompress`](Self::try_decompress) error, formatted).
    fn decompress(&self, data: &[u8]) -> [u8; BLOCK_SIZE] {
        match self.try_decompress(data) {
            Ok(block) => block,
            Err(e) => panic!("{} decode failed: {e}", self.name()),
        }
    }

    /// The size the block occupies after compression: the encoded length,
    /// or [`BLOCK_SIZE`] when the codec declines to compress.
    fn compressed_size(&self, block: &[u8; BLOCK_SIZE]) -> usize {
        self.compress(block).map_or(BLOCK_SIZE, |v| v.len())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::BLOCK_SIZE;

    /// A few structured blocks covering the interesting regimes.
    pub fn sample_blocks() -> Vec<[u8; BLOCK_SIZE]> {
        let mut blocks = Vec::new();
        blocks.push([0u8; BLOCK_SIZE]); // zero
        blocks.push([0xAB; BLOCK_SIZE]); // repeated byte
                                         // Small 32-bit integers (BDI-friendly).
        let mut ints = [0u8; BLOCK_SIZE];
        for i in 0..16 {
            ints[i * 4..i * 4 + 4].copy_from_slice(&(1000u32 + i as u32).to_le_bytes());
        }
        blocks.push(ints);
        // Pointers sharing the high 5 bytes (CPack/BDI-friendly).
        let mut ptrs = [0u8; BLOCK_SIZE];
        for i in 0..8 {
            let p: u64 = 0x7fff_aaaa_0000 + (i as u64) * 0x40;
            ptrs[i * 8..i * 8 + 8].copy_from_slice(&p.to_le_bytes());
        }
        blocks.push(ptrs);
        // Pseudorandom (incompressible).
        let mut rnd = [0u8; BLOCK_SIZE];
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for b in rnd.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        blocks.push(rnd);
        blocks
    }
}
