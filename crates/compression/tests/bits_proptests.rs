//! Property tests for the word-at-a-time bit I/O against a naive
//! bit-at-a-time reference: any sequence of variable-width writes must
//! produce the reference byte stream, and reads (in any get/peek/consume
//! interleaving) must observe the reference bit sequence.

use proptest::prelude::*;
use tmcc_compression::{BitReader, BitWriter};

/// Reference writer: collects individual bits, packs MSB-first with
/// low-bit zero padding — the stream format definition, executed one bit
/// at a time.
#[derive(Default)]
struct NaiveWriter {
    bits: Vec<bool>,
}

impl NaiveWriter {
    fn put(&mut self, value: u64, n: u32) {
        for i in (0..n).rev() {
            self.bits.push((value >> i) & 1 != 0);
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        let mut out = vec![0u8; self.bits.len().div_ceil(8)];
        for (i, &bit) in self.bits.iter().enumerate() {
            if bit {
                out[i / 8] |= 1 << (7 - i % 8);
            }
        }
        out
    }
}

/// A write plan: (value, width) pairs with widths over the full 0..=64
/// range, biased toward the small widths codecs actually use (the raw
/// 0..=20 range maps its tail onto the wide widths, including the >56
/// accumulator-split path).
fn arb_writes() -> impl Strategy<Value = Vec<(u64, u32)>> {
    let width = (0u32..=20).prop_map(|w| match w {
        0..=16 => w,
        17 => 24,
        18 => 47,
        19 => 57,
        _ => 64,
    });
    prop::collection::vec((any::<u64>(), width), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn writer_matches_naive_reference(writes in arb_writes()) {
        let mut w = BitWriter::new();
        let mut naive = NaiveWriter::default();
        for &(value, n) in &writes {
            w.put(value, n);
            let masked = if n == 64 { value } else { value & ((1u64 << n) - 1) };
            naive.put(masked, n);
        }
        let total: usize = writes.iter().map(|&(_, n)| n as usize).sum();
        prop_assert_eq!(w.len_bits(), total);
        prop_assert_eq!(w.into_bytes(), naive.into_bytes());
    }

    #[test]
    fn reader_round_trips_written_fields(writes in arb_writes()) {
        let mut w = BitWriter::new();
        for &(value, n) in &writes {
            w.put(value, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(value, n) in &writes {
            let masked = if n == 64 { value } else { value & ((1u64 << n) - 1) };
            prop_assert_eq!(r.get(n), masked, "width {}", n);
        }
    }

    #[test]
    fn peek_consume_agrees_with_get(bytes in prop::collection::vec(any::<u8>(), 0..64),
                                    widths in prop::collection::vec(1u32..=24, 1..40)) {
        // Drive two readers over the same bytes: one with get(), one with
        // peek()+consume(); both must see identical fields, and peek must
        // zero-pad past the end instead of panicking.
        let mut getter = BitReader::new(&bytes);
        let mut peeker = BitReader::new(&bytes);
        let mut remaining = bytes.len() * 8;
        for &n in &widths {
            let seen = peeker.peek(n);
            if (n as usize) > remaining {
                let tail = peeker.peek(remaining as u32);
                prop_assert_eq!(seen, tail << (n - remaining as u32));
                break;
            }
            prop_assert_eq!(getter.get(n), seen, "width {}", n);
            peeker.consume(n);
            prop_assert_eq!(getter.pos_bits(), peeker.pos_bits());
            remaining -= n as usize;
        }
    }

    #[test]
    fn take_bytes_streams_are_independent(first in arb_writes(), second in arb_writes()) {
        // Reusing one writer via take_bytes must produce exactly the
        // streams two fresh writers would.
        let mut reused = BitWriter::new();
        let mut fresh_bytes = Vec::new();
        let mut reused_bytes = Vec::new();
        for writes in [&first, &second] {
            let mut fresh = BitWriter::new();
            for &(value, n) in writes.iter() {
                fresh.put(value, n);
                reused.put(value, n);
            }
            fresh_bytes.push(fresh.into_bytes());
            reused_bytes.push(reused.take_bytes());
        }
        prop_assert_eq!(fresh_bytes, reused_bytes);
    }
}
