//! Property tests: every block codec must restore any 64-byte block it
//! claims to compress, across structured and adversarial inputs.

use proptest::prelude::*;
use tmcc_compression::{
    BdiCodec, BestOfCodec, BlockCodec, BpcCodec, CpackCodec, ZeroBlockCodec, BLOCK_SIZE,
};

fn arb_block() -> impl Strategy<Value = [u8; BLOCK_SIZE]> {
    prop::array::uniform32(any::<u8>()).prop_flat_map(|half| {
        prop::array::uniform32(any::<u8>()).prop_map(move |other| {
            let mut out = [0u8; BLOCK_SIZE];
            out[..32].copy_from_slice(&half);
            out[32..].copy_from_slice(&other);
            out
        })
    })
}

/// Blocks of narrow integers with a random stride — the structured case the
/// codecs are built for.
fn arb_strided_block() -> impl Strategy<Value = [u8; BLOCK_SIZE]> {
    (any::<u32>(), 0u32..1024, prop::bool::ANY).prop_map(|(base, stride, wide)| {
        let mut out = [0u8; BLOCK_SIZE];
        if wide {
            for i in 0..8u64 {
                let v = base as u64 + i * stride as u64;
                out[i as usize * 8..][..8].copy_from_slice(&v.to_le_bytes());
            }
        } else {
            for i in 0..16u32 {
                let v = base.wrapping_add(i * stride);
                out[i as usize * 4..][..4].copy_from_slice(&v.to_le_bytes());
            }
        }
        out
    })
}

fn check_round_trip(codec: &dyn BlockCodec, block: &[u8; BLOCK_SIZE]) {
    if let Some(c) = codec.compress(block) {
        assert!(c.len() < BLOCK_SIZE, "{}: compressed output not smaller", codec.name());
        assert_eq!(&codec.decompress(&c), block, "{}: round trip", codec.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn bdi_round_trips_random(block in arb_block()) {
        check_round_trip(&BdiCodec::new(), &block);
    }

    #[test]
    fn bpc_round_trips_random(block in arb_block()) {
        check_round_trip(&BpcCodec::new(), &block);
    }

    #[test]
    fn cpack_round_trips_random(block in arb_block()) {
        check_round_trip(&CpackCodec::new(), &block);
    }

    #[test]
    fn zero_round_trips_random(block in arb_block()) {
        check_round_trip(&ZeroBlockCodec::new(), &block);
    }

    #[test]
    fn best_of_round_trips_random(block in arb_block()) {
        check_round_trip(&BestOfCodec::new(), &block);
    }

    #[test]
    fn bdi_round_trips_strided(block in arb_strided_block()) {
        check_round_trip(&BdiCodec::new(), &block);
    }

    #[test]
    fn bpc_round_trips_strided(block in arb_strided_block()) {
        check_round_trip(&BpcCodec::new(), &block);
    }

    #[test]
    fn cpack_round_trips_strided(block in arb_strided_block()) {
        check_round_trip(&CpackCodec::new(), &block);
    }

    #[test]
    fn best_of_compresses_strided(block in arb_strided_block()) {
        // Structured data must actually compress under the composite.
        let codec = BestOfCodec::new();
        let size = codec.compressed_size(&block);
        prop_assert!(size < BLOCK_SIZE, "strided block failed to compress: {size}");
        check_round_trip(&codec, &block);
    }
}
